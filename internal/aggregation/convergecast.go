package aggregation

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/sched"
)

// Schedule is a convergecast schedule: Slot[i] gives the time slot
// (0-based) in which node i transmits its aggregate to its parent.
type Schedule struct {
	Tree *Tree
	// Slot[i] is node i's transmission slot.
	Slot []int
	// Latency is the number of slots used (max slot + 1).
	Latency int
}

// Convergecast builds a complete aggregation schedule: every node
// transmits exactly once, after all of its children, in slots whose
// concurrent link sets are feasible under the radio parameters, with
// at most one transmitting child per receiver per slot.
//
// Slot packing is greedy: among ready nodes (all children done), build
// a candidate link set with one child per distinct receiver (ties:
// deeper subtree first, then shorter edge, then index — deep subtrees
// gate the critical path), run the one-slot algorithm on it, and
// commit the result; if the algorithm declines everything, the first
// candidate is forced so the schedule always completes.
func Convergecast(t *Tree, params radio.Params, algo sched.Algorithm) (*Schedule, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := len(t.Nodes)
	cs := &Schedule{Tree: t, Slot: make([]int, n)}
	for i := range cs.Slot {
		cs.Slot[i] = -1
	}
	children, _ := t.Children()
	pendingChildren := make([]int, n) // children not yet transmitted
	for i := range children {
		pendingChildren[i] = len(children[i])
	}
	// subtreeHeight[i]: longest chain below i — the priority key.
	height := make([]int, n)
	var hwalk func(i int) int
	hwalk = func(i int) int {
		if height[i] > 0 {
			return height[i]
		}
		h := 1
		for _, c := range children[i] {
			if ch := hwalk(c) + 1; ch > h {
				h = ch
			}
		}
		height[i] = h
		return h
	}
	for i := 0; i < n; i++ {
		hwalk(i)
	}

	done := 0
	for slot := 0; done < n; slot++ {
		if slot > 2*n+1 {
			return nil, fmt.Errorf("aggregation: scheduler failed to converge (%d/%d after %d slots)", done, n, slot)
		}
		// Ready nodes, one per distinct receiver.
		ready := readyNodes(cs.Slot, pendingChildren)
		if len(ready) == 0 {
			return nil, fmt.Errorf("aggregation: no ready nodes with %d pending — precedence cycle", n-done)
		}
		slices.SortFunc(ready, func(ia, ib int) int {
			if c := cmp.Compare(height[ib], height[ia]); c != 0 {
				return c
			}
			da := t.Nodes[ia].Dist(t.ParentPoint(ia))
			db := t.Nodes[ib].Dist(t.ParentPoint(ib))
			if c := cmp.Compare(da, db); c != 0 {
				return c
			}
			return cmp.Compare(ia, ib)
		})
		var cand []int
		usedRecv := map[int]bool{}
		for _, i := range ready {
			p := t.Parent[i]
			if usedRecv[p] {
				continue
			}
			usedRecv[p] = true
			cand = append(cand, i)
		}

		links := make([]network.Link, len(cand))
		for k, i := range cand {
			links[k] = network.Link{Sender: t.Nodes[i], Receiver: t.ParentPoint(i), Rate: 1}
		}
		ls, err := network.NewLinkSet(links)
		if err != nil {
			return nil, fmt.Errorf("aggregation: slot %d candidates invalid: %w", slot, err)
		}
		pr, err := sched.NewProblem(ls, params)
		if err != nil {
			return nil, err
		}
		picked := algo.Schedule(pr).Active
		if len(picked) == 0 {
			picked = []int{0} // force the highest-priority candidate
		}
		for _, k := range picked {
			i := cand[k]
			cs.Slot[i] = slot
			done++
			if p := t.Parent[i]; p != SinkParent {
				pendingChildren[p]--
			}
		}
		cs.Latency = slot + 1
	}
	return cs, nil
}

func readyNodes(slot []int, pendingChildren []int) []int {
	var out []int
	for i := range slot {
		if slot[i] < 0 && pendingChildren[i] == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Validate re-checks a convergecast schedule independently: every node
// transmits exactly once, strictly after its children, with unique
// receivers per slot and every slot's link set feasible.
func (cs *Schedule) Validate(params radio.Params) error {
	t := cs.Tree
	n := len(t.Nodes)
	slots := make(map[int][]int)
	for i, s := range cs.Slot {
		if s < 0 || s >= cs.Latency {
			return fmt.Errorf("aggregation: node %d has slot %d outside [0,%d)", i, s, cs.Latency)
		}
		slots[s] = append(slots[s], i)
		if p := t.Parent[i]; p != SinkParent && cs.Slot[p] <= s {
			return fmt.Errorf("aggregation: node %d (slot %d) transmits after parent %d (slot %d)",
				i, s, p, cs.Slot[p])
		}
	}
	covered := 0
	for s := 0; s < cs.Latency; s++ {
		nodes := slots[s]
		covered += len(nodes)
		if len(nodes) == 0 {
			return fmt.Errorf("aggregation: slot %d empty", s)
		}
		recv := map[int]bool{}
		links := make([]network.Link, len(nodes))
		for k, i := range nodes {
			p := t.Parent[i]
			if recv[p] {
				return fmt.Errorf("aggregation: slot %d has two transmissions to parent %d", s, p)
			}
			recv[p] = true
			links[k] = network.Link{Sender: t.Nodes[i], Receiver: t.ParentPoint(i), Rate: 1}
		}
		ls, err := network.NewLinkSet(links)
		if err != nil {
			return err
		}
		pr, err := sched.NewProblem(ls, params)
		if err != nil {
			return err
		}
		all := make([]int, len(links))
		for k := range all {
			all[k] = k
		}
		if len(links) > 1 {
			if v := sched.Verify(pr, sched.NewSchedule("slot", all)); len(v) != 0 {
				return fmt.Errorf("aggregation: slot %d infeasible: %v", s, v[0])
			}
		}
	}
	if covered != n {
		return fmt.Errorf("aggregation: %d of %d nodes scheduled", covered, n)
	}
	return nil
}
