// Package aggregation implements the convergecast workload that
// motivates the paper's uniform-rate special case (§IV-B cites barrage
// relay / sensor reporting [21], and the related-work discussion cites
// periodic aggregation scheduling [12]): every sensor's reading must
// reach a sink over a routing tree, a parent aggregates its children's
// data before forwarding, and the question is how many time slots the
// whole aggregation takes when each slot's concurrent links must be
// feasible under the Rayleigh-fading model.
//
// Pieces:
//
//   - Tree: a geometric aggregation tree (each node's parent is its
//     nearest neighbor strictly closer to the sink, which is acyclic by
//     construction);
//   - Convergecast: a precedence-respecting slot scheduler that packs
//     ready tree edges into feasible slots with a pluggable one-slot
//     algorithm, enforcing one transmitting child per parent per slot
//     (the receiver-uniqueness the system model demands) — half-duplex
//     holds automatically because a node becomes ready only after all
//     of its children have transmitted.
//
// The latency (slot count) of the resulting schedule is the metric the
// aggregation literature optimizes; the package's tests pin the exact
// analytic latency on chain and star topologies and the feasibility of
// every slot on random ones.
package aggregation
