package aggregation

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sched"
)

func randomNodes(seed uint64, n int, span float64) []geom.Point {
	src := rng.Stream(seed, "agg-nodes", 0)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: src.Float64() * span, Y: src.Float64() * span}
	}
	return pts
}

func TestBuildTreeValid(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		nodes := randomNodes(seed, 60, 400)
		sink := geom.Point{X: 200, Y: 200}
		tree, err := BuildTree(nodes, sink)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, h := tree.Depth(); h < 1 || h > 60 {
			t.Errorf("seed %d: implausible height %d", seed, h)
		}
	}
}

func TestBuildTreeRejectsDuplicates(t *testing.T) {
	sink := geom.Point{X: 0, Y: 0}
	if _, err := BuildTree([]geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}}, sink); err == nil {
		t.Error("duplicate nodes accepted")
	}
	if _, err := BuildTree([]geom.Point{{X: 0, Y: 0}}, sink); err == nil {
		t.Error("node at the sink accepted")
	}
}

func TestBuildTreeParentsCloserToSink(t *testing.T) {
	nodes := randomNodes(7, 40, 300)
	sink := geom.Point{X: 150, Y: 150}
	tree, err := BuildTree(nodes, sink)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		if tree.ParentPoint(i).Dist(sink) >= nodes[i].Dist(sink) && tree.Parent[i] != SinkParent {
			t.Errorf("node %d's parent not closer to sink", i)
		}
	}
}

func TestChildrenPartition(t *testing.T) {
	tree, err := BuildTree(randomNodes(3, 30, 200), geom.Point{X: 100, Y: 100})
	if err != nil {
		t.Fatal(err)
	}
	children, sinkChildren := tree.Children()
	count := len(sinkChildren)
	for _, cs := range children {
		count += len(cs)
	}
	if count != 30 {
		t.Errorf("children lists cover %d of 30 nodes", count)
	}
	if len(sinkChildren) == 0 {
		t.Error("no node transmits directly to the sink")
	}
}

func chainTree(t *testing.T, k int, hop float64) *Tree {
	t.Helper()
	// Nodes on a line approaching the sink at the origin: node i at
	// x = (i+1)·hop. Nearest closer neighbor is always the next node
	// toward the sink, so the tree is the chain.
	nodes := make([]geom.Point, k)
	for i := range nodes {
		nodes[i] = geom.Point{X: float64(i+1) * hop, Y: 0}
	}
	tree, err := BuildTree(nodes, geom.Point{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestConvergecastChainExactLatency(t *testing.T) {
	// A k-chain admits no parallelism: aggregation precedence forces
	// exactly k slots regardless of the packer.
	const k = 7
	tree := chainTree(t, k, 10)
	for _, algo := range []sched.Algorithm{sched.RLE{}, sched.Greedy{}} {
		cs, err := Convergecast(tree, radio.DefaultParams(), algo)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Latency != k {
			t.Errorf("%s: chain latency %d, want %d", algo.Name(), cs.Latency, k)
		}
		if err := cs.Validate(radio.DefaultParams()); err != nil {
			t.Errorf("%s: %v", algo.Name(), err)
		}
		// Deepest node (farthest from sink, index k-1) must go first;
		// node 0 (adjacent to sink) last.
		if cs.Slot[k-1] != 0 || cs.Slot[0] != k-1 {
			t.Errorf("%s: chain order wrong: %v", algo.Name(), cs.Slot)
		}
	}
}

func TestConvergecastStarLatency(t *testing.T) {
	// k nodes all adjacent to the sink: each needs its own slot at the
	// shared receiver, so latency = k exactly.
	const k = 6
	// Points at exactly radius 10 (Pythagorean coordinates, no
	// trigonometric rounding): equal distance to the sink means none is
	// "strictly closer", so all attach directly.
	nodes := []geom.Point{
		{X: 10, Y: 0}, {X: -10, Y: 0}, {X: 0, Y: 10},
		{X: 0, Y: -10}, {X: 6, Y: 8}, {X: -6, Y: -8},
	}
	if len(nodes) != k {
		t.Fatal("fixture size mismatch")
	}
	tree, err := BuildTree(nodes, geom.Point{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	// All on one circle: no node is strictly closer, so all attach to
	// the sink directly.
	for i, p := range tree.Parent {
		if p != SinkParent {
			t.Fatalf("node %d not a sink child (parent %d)", i, p)
		}
	}
	cs, err := Convergecast(tree, radio.DefaultParams(), sched.Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Latency != k {
		t.Errorf("star latency %d, want %d", cs.Latency, k)
	}
	if err := cs.Validate(radio.DefaultParams()); err != nil {
		t.Error(err)
	}
}

func TestConvergecastRandomValid(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		tree, err := BuildTree(randomNodes(seed, 80, 500), geom.Point{X: 250, Y: 250})
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []sched.Algorithm{sched.RLE{}, sched.Greedy{}, sched.LDP{}} {
			cs, err := Convergecast(tree, radio.DefaultParams(), algo)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, algo.Name(), err)
			}
			if err := cs.Validate(radio.DefaultParams()); err != nil {
				t.Errorf("seed %d %s: %v", seed, algo.Name(), err)
			}
			_, h := tree.Depth()
			if cs.Latency < h {
				t.Errorf("seed %d %s: latency %d below tree height %d — precedence must forbid this",
					seed, algo.Name(), cs.Latency, h)
			}
			if cs.Latency > 2*len(tree.Nodes) {
				t.Errorf("seed %d %s: latency %d absurd", seed, algo.Name(), cs.Latency)
			}
		}
	}
}

func TestConvergecastDeterministic(t *testing.T) {
	tree, err := BuildTree(randomNodes(9, 50, 400), geom.Point{X: 200, Y: 200})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Convergecast(tree, radio.DefaultParams(), sched.Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Convergecast(tree, radio.DefaultParams(), sched.Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Slot {
		if a.Slot[i] != b.Slot[i] {
			t.Fatalf("slot assignment differs at node %d", i)
		}
	}
}

func TestConvergecastSingleNode(t *testing.T) {
	tree, err := BuildTree([]geom.Point{{X: 10, Y: 0}}, geom.Point{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Convergecast(tree, radio.DefaultParams(), sched.RLE{})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Latency != 1 || cs.Slot[0] != 0 {
		t.Errorf("single node schedule: %+v", cs)
	}
}

func TestGreedyPackerBeatsSequentialLatency(t *testing.T) {
	// On a spread deployment the packer must exploit spatial reuse:
	// latency well below the sequential bound N.
	tree, err := BuildTree(randomNodes(11, 100, 2000), geom.Point{X: 1000, Y: 1000})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Convergecast(tree, radio.DefaultParams(), sched.Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Latency >= 100 {
		t.Errorf("no spatial reuse: latency %d for 100 nodes", cs.Latency)
	}
	if err := cs.Validate(radio.DefaultParams()); err != nil {
		t.Error(err)
	}
}

func BenchmarkConvergecast100(b *testing.B) {
	tree, err := BuildTree(randomNodes(1, 100, 500), geom.Point{X: 250, Y: 250})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Convergecast(tree, radio.DefaultParams(), sched.Greedy{}); err != nil {
			b.Fatal(err)
		}
	}
}
