package fadingrls

// Re-exports of the NP-hardness machinery (Theorem 3.2): the knapsack
// solver and the executable reduction from knapsack to Fading-R-LS.

import "repro/internal/knapsack"

type (
	// KnapsackItem is one 0/1-knapsack item.
	KnapsackItem = knapsack.Item
	// KnapsackInstance is a knapsack input.
	KnapsackInstance = knapsack.Instance
	// Reduction is the Theorem 3.2 embedding of a knapsack instance
	// into a Fading-R-LS instance.
	Reduction = knapsack.Reduction
)

// SolveKnapsack returns the optimal value and chosen item indices via
// the exact O(n·W) dynamic program.
func SolveKnapsack(in KnapsackInstance) (float64, []int, error) {
	return knapsack.Solve(in)
}

// ReduceKnapsack builds the Theorem 3.2 scheduling instance whose
// optimal throughput equals 2·Σvalues + the knapsack optimum.
func ReduceKnapsack(in KnapsackInstance, p Params) (*Reduction, error) {
	return knapsack.Reduce(in, p)
}
