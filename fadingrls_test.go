package fadingrls_test

import (
	"math"
	"testing"

	fadingrls "repro"
)

func TestQuickstartFlow(t *testing.T) {
	ls, err := fadingrls.Generate(fadingrls.PaperConfig(120), 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := fadingrls.RLE{}.Schedule(pr)
	if s.Len() == 0 {
		t.Fatal("RLE scheduled nothing")
	}
	if !fadingrls.Feasible(pr, s) {
		t.Fatal("RLE schedule infeasible through the public API")
	}
	if got := s.Throughput(pr); got != float64(s.Len()) {
		t.Errorf("unit-rate throughput %v != link count %d", got, s.Len())
	}
	probs := fadingrls.SuccessProbabilities(pr, s)
	for _, p := range probs {
		if p < 1-fadingrls.DefaultParams().Eps-1e-9 {
			t.Errorf("scheduled link success %v below 1−ε", p)
		}
	}
	if ef := fadingrls.ExpectedFailures(pr, s); ef > float64(s.Len())*0.011 {
		t.Errorf("expected failures %v too high", ef)
	}
}

func TestSolveByName(t *testing.T) {
	ls, err := fadingrls.Generate(fadingrls.PaperConfig(60), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	names := fadingrls.Algorithms()
	if len(names) < 7 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, name := range names {
		if name == "exact" {
			continue // N=60 exceeds the exact solver's cap
		}
		s, err := fadingrls.Solve(name, pr)
		if err != nil {
			t.Errorf("Solve(%q): %v", name, err)
			continue
		}
		if s.Algorithm == "" {
			t.Errorf("Solve(%q) returned unlabeled schedule", name)
		}
	}
	if _, err := fadingrls.Solve("bogus", pr); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestSimulateThroughAPI(t *testing.T) {
	ls, err := fadingrls.Generate(fadingrls.PaperConfig(100), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := fadingrls.ApproxDiversity{}.Schedule(pr)
	res, err := fadingrls.Simulate(pr, s, fadingrls.SimConfig{Slots: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures.N() != 200 {
		t.Errorf("slots recorded = %d", res.Failures.N())
	}
	if res.Failures.Mean() <= 0 {
		t.Error("overpacking baseline showed no failures — channel model broken?")
	}
	if math.Abs(res.Failures.Mean()-res.Expected) > 5*res.Failures.StdErr()+0.2 {
		t.Errorf("MC %v vs analytic %v disagree", res.Failures.Mean(), res.Expected)
	}
}

func TestExperimentsThroughAPI(t *testing.T) {
	specs := fadingrls.Experiments()
	spec, ok := specs["fig6a"]
	if !ok {
		t.Fatal("fig6a spec missing")
	}
	spec.Xs = []float64{100}
	tab, err := fadingrls.RunExperiment(spec, fadingrls.ExperimentOptions{Seed: 1, Instances: 3, Slots: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Order) < 2 {
		t.Errorf("fig6a has %d series", len(tab.Order))
	}
}

func TestBuildILPThroughAPI(t *testing.T) {
	ls, err := fadingrls.Generate(fadingrls.PaperConfig(10), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ilp := fadingrls.BuildILP(pr)
	if len(ilp.Rates) != 10 || ilp.Field == nil || ilp.Field.N() != 10 {
		t.Errorf("ILP dims wrong: %d rates, field %v", len(ilp.Rates), ilp.Field)
	}
	if ilp.Coeff(0, 1) <= 0 {
		t.Error("ILP coefficient read-through broken: Coeff(0,1) not positive")
	}
	if ilp.M <= ilp.GammaEps {
		t.Error("big-M not dominating")
	}
}

func TestExplicitLinkSetThroughAPI(t *testing.T) {
	links := []fadingrls.Link{
		{Sender: fadingrls.Point{X: 0, Y: 0}, Receiver: fadingrls.Point{X: 12, Y: 0}, Rate: 1},
		{Sender: fadingrls.Point{X: 300, Y: 300}, Receiver: fadingrls.Point{X: 310, Y: 300}, Rate: 2},
	}
	ls, err := fadingrls.NewLinkSet(links)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := fadingrls.Exact{}.Schedule(pr)
	if s.Len() != 2 {
		t.Errorf("exact scheduled %d of 2 independent links", s.Len())
	}
}
