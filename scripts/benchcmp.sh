#!/bin/sh
# benchcmp.sh — compare two bench.sh JSON records benchmark by
# benchmark and flag regressions.
#
#   scripts/benchcmp.sh OLD.json NEW.json [threshold-pct]
#
# For every benchmark present in both files it prints old/new ns/op and
# the delta; ns/op regressions beyond the threshold (default 10%) are
# marked "REGRESSION" and make the script exit 1, so it can gate CI.
# Benchmarks flagged low_iter (a single iteration) are compared but
# annotated — one-sample numbers are too noisy to fail a build on, so
# they warn instead of erroring. Benchmarks present in only one file
# are listed as added/removed.
set -eu

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
    echo "usage: benchcmp.sh OLD.json NEW.json [threshold-pct]" >&2
    exit 2
fi
old=$1
new=$2
threshold=${3:-10}
for f in "$old" "$new"; do
    [ -r "$f" ] || { echo "benchcmp.sh: cannot read $f" >&2; exit 2; }
done

# Flatten one bench.sh JSON into "name ns_per_op low_iter" lines. The
# records are machine-written one benchmark per line, so line-oriented
# extraction is reliable without a JSON parser in the image.
flatten() {
    tr ',' '\n' <"$1" | awk '
        /"name":/     { gsub(/.*"name": *"|".*/, ""); name = $0 }
        /"low_iter":/ { low[name] = 1 }
        /"ns_per_op":/ {
            gsub(/.*"ns_per_op": */, "")
            gsub(/[^0-9.eE+-]/, "")
            ns[name] = $0
        }
        END { for (n in ns) printf "%s %s %d\n", n, ns[n], low[n] }
    '
}

tmpo=$(mktemp)
tmpn=$(mktemp)
trap 'rm -f "$tmpo" "$tmpn"' EXIT
flatten "$old" >"$tmpo"
flatten "$new" >"$tmpn"

awk -v threshold="$threshold" -v oldfile="$old" -v newfile="$new" '
    NR == FNR { oldns[$1] = $2; oldlow[$1] = $3; next }
    { newns[$1] = $2; newlow[$1] = $3 }
    END {
        printf "%-56s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
        regressions = 0
        n = 0
        for (b in newns) names[n++] = b
        # deterministic report order
        for (i = 0; i < n; i++)
            for (j = i + 1; j < n; j++)
                if (names[j] < names[i]) { t = names[i]; names[i] = names[j]; names[j] = t }
        for (i = 0; i < n; i++) {
            b = names[i]
            if (!(b in oldns)) { printf "%-56s %14s %14.0f %9s\n", b, "-", newns[b], "added"; continue }
            pct = oldns[b] > 0 ? 100 * (newns[b] - oldns[b]) / oldns[b] : 0
            note = ""
            if (pct > threshold) {
                if (oldlow[b] || newlow[b]) note = "  noisy (single iteration) — not gated"
                else { note = "  REGRESSION"; regressions++ }
            }
            printf "%-56s %14.0f %14.0f %+8.1f%%%s\n", b, oldns[b], newns[b], pct, note
            delete oldns[b]
        }
        for (b in oldns) printf "%-56s %14.0f %14s %9s\n", b, oldns[b], "-", "removed"
        if (regressions) {
            printf "\n%d benchmark(s) regressed more than %s%% (%s -> %s)\n", regressions, threshold, oldfile, newfile
            exit 1
        }
    }
' "$tmpo" "$tmpn"
