#!/bin/sh
# bench.sh — run the repository performance suite and emit a
# machine-readable record (BENCH_PR10.json by default): ns/op, B/op,
# and allocs/op for the figure-regeneration bench (Fig 5a),
# interference-field construction, cold-build vs warm-prepared solves
# (traced and untraced — the traced/untraced delta is the ≤5%
# span-overhead gate, and BenchmarkSpanLifecycle documents the
# 0 allocs/op warm span path), the schedd end-to-end paths (cold /
# prepared-field / response-cache-warm / batch), the traffic engine
# (per-slot cost plus the ≥1M-packet n=5000 throughput run with its
# packets/sec metric), the streaming-session event loop at n=2000, and
# the tile-sharded scale records: sharded-vs-unsharded greedy at
# n=5000/20000 plus the n=100000 sparse build + sharded solve.
#
#   scripts/bench.sh              full run, writes BENCH_PR10.json
#   scripts/bench.sh -quick       1-iteration smoke (check.sh uses this)
#   scripts/bench.sh -gate        converged fast subset (benchcmp gate)
#   scripts/bench.sh -o out.json  choose the output path
#
# BENCHTIME overrides the per-benchmark budget (default 1s; -quick
# forces 1x). Field-construction benchmarks (BenchmarkNewProblem) run
# under a fixed -count=1 -benchtime=3s budget so the n=5000 builds get
# multiple iterations; any result that still lands at one iteration is
# flagged "low_iter" in the JSON so single-sample numbers are never
# mistaken for converged ones (benchcmp warns instead of failing on
# them). -gate runs only the high-iteration, stable benchmarks —
# check.sh compares that subset against the committed baseline with
# scripts/benchcmp.sh and fails on large ns/op regressions (the CI
# threshold is wider than benchcmp's 10% default to absorb the shared
# runner's measured speed variance; see check.sh).
set -eu

cd "$(dirname "$0")/.."

out=BENCH_PR10.json
benchtime=${BENCHTIME:-1s}
buildbenchtime=3s
mode=full
while [ $# -gt 0 ]; do
    case "$1" in
    -quick)
        mode=quick
        benchtime=1x
        buildbenchtime=1x
        ;;
    -gate)
        mode=gate
        ;;
    -o)
        out=$2
        shift
        ;;
    *)
        echo "usage: bench.sh [-quick|-gate] [-o file]" >&2
        exit 2
        ;;
    esac
    shift
done

tmp=$(mktemp)
part=$(mktemp)
trap 'rm -f "$tmp" "$part"' EXIT

run() { # run <package> <bench regex> [benchtime]
    # Capture first, append on success: a pipeline into tee would hide
    # go test's exit status from `set -e`.
    bt=${3:-$benchtime}
    if ! go test -run '^$' -bench "$2" -benchtime "$bt" -count=1 "$1" >"$part" 2>&1; then
        cat "$part" >&2
        echo "bench.sh: go test -bench $2 $1 failed" >&2
        exit 1
    fi
    cat "$part"
    cat "$part" >>"$tmp"
}

case "$mode" in
quick)
    run . 'BenchmarkSolveColdBuild$|BenchmarkSolveWarmPrepared$|BenchmarkSolveWarmTraced$'
    run . 'BenchmarkShardedVsGreedy$'
    run ./internal/server/ 'BenchmarkSolveBatch$|BenchmarkSessionEvents$'
    run ./internal/traffic/ 'BenchmarkEngineStep$'
    run ./internal/obs/ 'BenchmarkSpanLifecycle$'
    ;;
gate)
    # The regression-gate subset: every benchmark here converges to
    # hundreds of iterations inside the default budget, so a >10%
    # ns/op move is signal, not scheduler noise.
    run . 'BenchmarkSolveWarmPrepared$|BenchmarkSolveWarmTraced$'
    run ./internal/server/ 'BenchmarkSessionEvents$'
    run ./internal/traffic/ 'BenchmarkEngineStep$'
    run ./internal/obs/ 'BenchmarkSpanLifecycle$'
    ;;
*)
    run . 'BenchmarkFig5a$'
    # Field builds get a fixed multi-iteration budget (see header).
    run . 'BenchmarkNewProblem$' "$buildbenchtime"
    run . 'BenchmarkSolveColdBuild$|BenchmarkSolveWarmPrepared$|BenchmarkSolveWarmTraced$'
    # Sharded-vs-unsharded at n=5000/20000: a fixed 3-iteration budget
    # (the n=20000 unsharded greedy alone runs seconds per iteration).
    run . 'BenchmarkShardedVsGreedy$' 3x
    # The n=100000 scale record is single-iteration by design; its
    # low_iter flag keeps benchcmp advisory on it.
    run . 'BenchmarkSharded100k$' 1x
    run ./internal/server/ 'BenchmarkSolveColdVsWarm$|BenchmarkSolveBatch$|BenchmarkSessionEvents$'
    run ./internal/traffic/ 'BenchmarkEngineStep$|BenchmarkEngineThroughput$'
    # The span-tracing overhead record: the warm span lifecycle must
    # stay 0 allocs/op, the inert path near-free.
    run ./internal/obs/ 'BenchmarkSpanLifecycle$|BenchmarkSpanInert$'
    ;;
esac

# Parse `go test -bench` result lines into JSON. A line is
#   BenchmarkName-P  iters  v1 unit1  v2 unit2 ...
# where the units are ns/op, B/op, allocs/op, and any custom
# b.ReportMetric units; each becomes a key with '/' spelled _per_.
{
    printf '{\n'
    printf '  "id": "%s",\n' "$(basename "$out" .json)"
    printf '  "generated_at": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
    # The CPU count the record was taken at: comparing ns/op across
    # different core counts is meaningless for parallel benchmarks, so
    # check.sh's regression gate skips the comparison on a mismatch.
    printf '  "maxprocs": %s,\n' "$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "benchmarks": [\n'
    awk '
        /^Benchmark/ && NF >= 4 {
            if (n++) printf ",\n"
            printf "    {\"name\": \"%s\", \"iters\": %s", $1, $2
            if ($2 + 0 == 1) printf ", \"low_iter\": true"
            for (i = 3; i < NF; i += 2) {
                key = $(i + 1)
                gsub(/\//, "_per_", key)
                gsub(/[^A-Za-z0-9_]/, "_", key)
                printf ", \"%s\": %s", key, $i
            }
            printf "}"
        }
        END { if (n) printf "\n" }
    ' "$tmp"
    printf '  ]\n'
    printf '}\n'
} >"$out"

echo "wrote $out"
