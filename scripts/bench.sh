#!/bin/sh
# bench.sh — run the repository performance suite and emit a
# machine-readable record (BENCH_PR9.json by default): ns/op, B/op, and
# allocs/op for the figure-regeneration bench (Fig 5a),
# interference-field construction, cold-build vs warm-prepared solves
# (traced and untraced — the traced/untraced delta is the ≤5%
# span-overhead gate, and BenchmarkSpanLifecycle documents the
# 0 allocs/op warm span path), the schedd end-to-end paths (cold /
# prepared-field / response-cache-warm / batch), the traffic engine
# (per-slot cost plus the ≥1M-packet n=5000 throughput run with its
# packets/sec metric), and the streaming-session event loop at n=2000
# (events/sec plus p99-ns/event move→delta latency over the live HTTP
# stream).
#
#   scripts/bench.sh              full run, writes BENCH_PR9.json
#   scripts/bench.sh -quick       1-iteration smoke (check.sh uses this)
#   scripts/bench.sh -o out.json  choose the output path
#
# BENCHTIME overrides the per-benchmark budget (default 1s; -quick
# forces 1x). Field-construction benchmarks (BenchmarkNewProblem) run
# under a fixed -count=1 -benchtime=3s budget so the n=5000 builds get
# multiple iterations; any result that still lands at one iteration is
# flagged "low_iter" in the JSON so single-sample numbers are never
# mistaken for converged ones.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_PR9.json
benchtime=${BENCHTIME:-1s}
buildbenchtime=3s
quick=0
while [ $# -gt 0 ]; do
    case "$1" in
    -quick)
        quick=1
        benchtime=1x
        buildbenchtime=1x
        ;;
    -o)
        out=$2
        shift
        ;;
    *)
        echo "usage: bench.sh [-quick] [-o file]" >&2
        exit 2
        ;;
    esac
    shift
done

tmp=$(mktemp)
part=$(mktemp)
trap 'rm -f "$tmp" "$part"' EXIT

run() { # run <package> <bench regex> [benchtime]
    # Capture first, append on success: a pipeline into tee would hide
    # go test's exit status from `set -e`.
    bt=${3:-$benchtime}
    if ! go test -run '^$' -bench "$2" -benchtime "$bt" -count=1 "$1" >"$part" 2>&1; then
        cat "$part" >&2
        echo "bench.sh: go test -bench $2 $1 failed" >&2
        exit 1
    fi
    cat "$part"
    cat "$part" >>"$tmp"
}

if [ "$quick" = 1 ]; then
    run . 'BenchmarkSolveColdBuild$|BenchmarkSolveWarmPrepared$|BenchmarkSolveWarmTraced$'
    run ./internal/server/ 'BenchmarkSolveBatch$|BenchmarkSessionEvents$'
    run ./internal/traffic/ 'BenchmarkEngineStep$'
    run ./internal/obs/ 'BenchmarkSpanLifecycle$'
else
    run . 'BenchmarkFig5a$'
    # Field builds get a fixed multi-iteration budget (see header).
    run . 'BenchmarkNewProblem$' "$buildbenchtime"
    run . 'BenchmarkSolveColdBuild$|BenchmarkSolveWarmPrepared$|BenchmarkSolveWarmTraced$'
    run ./internal/server/ 'BenchmarkSolveColdVsWarm$|BenchmarkSolveBatch$|BenchmarkSessionEvents$'
    run ./internal/traffic/ 'BenchmarkEngineStep$|BenchmarkEngineThroughput$'
    # The span-tracing overhead record: the warm span lifecycle must
    # stay 0 allocs/op, the inert path near-free.
    run ./internal/obs/ 'BenchmarkSpanLifecycle$|BenchmarkSpanInert$'
fi

# Parse `go test -bench` result lines into JSON. A line is
#   BenchmarkName-P  iters  v1 unit1  v2 unit2 ...
# where the units are ns/op, B/op, allocs/op, and any custom
# b.ReportMetric units; each becomes a key with '/' spelled _per_.
{
    printf '{\n'
    printf '  "id": "%s",\n' "$(basename "$out" .json)"
    printf '  "generated_at": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "benchmarks": [\n'
    awk '
        /^Benchmark/ && NF >= 4 {
            if (n++) printf ",\n"
            printf "    {\"name\": \"%s\", \"iters\": %s", $1, $2
            if ($2 + 0 == 1) printf ", \"low_iter\": true"
            for (i = 3; i < NF; i += 2) {
                key = $(i + 1)
                gsub(/\//, "_per_", key)
                gsub(/[^A-Za-z0-9_]/, "_", key)
                printf ", \"%s\": %s", key, $i
            }
            printf "}"
        }
        END { if (n) printf "\n" }
    ' "$tmp"
    printf '  ]\n'
    printf '}\n'
} >"$out"

echo "wrote $out"
