#!/bin/sh
# check.sh — the repository's pre-merge gate: formatting, vet, build,
# and the full test suite under the race detector. Run from anywhere;
# it cds to the repo root. `make check` is the usual entry point.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
# -short skips the 20000-link sparse scale test (race-slowed past
# usefulness) and the golden Fig 5 regeneration; `make test-full`
# runs both. ./... covers every package, including the schedd serving
# stack (internal/server, cmd/schedd) whose suites double as the
# concurrency race tests for the pool, cache, and metrics.
go test -race -short ./...

echo "== serve smoke"
# Boot the daemon end to end: listen, solve one instance over HTTP,
# scrape metrics, drain cleanly.
go test -race -run TestServeSmoke -count=1 ./cmd/schedd/

echo "ok"
