#!/bin/sh
# check.sh — the repository's pre-merge gate: formatting, vet, build,
# and the full test suite under the race detector. Run from anywhere;
# it cds to the repo root. `make check` is the usual entry point.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
# -short skips the 20000-link sparse scale test, which the race
# detector slows past usefulness; run `make test-full` for it.
go test -race -short ./...

echo "ok"
