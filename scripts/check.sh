#!/bin/sh
# check.sh — the repository's pre-merge gate: formatting, vet, build,
# and the full test suite under the race detector. Run from anywhere;
# it cds to the repo root. `make check` is the usual entry point.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
# -short skips the 20000-link sparse scale test (race-slowed past
# usefulness) and the golden Fig 5 regeneration; `make test-full`
# runs both. ./... covers every package, including the schedd serving
# stack (internal/server, cmd/schedd) whose suites double as the
# concurrency race tests for the pool, cache, and metrics.
go test -race -short ./...

echo "== observability race pass"
# Re-run the obs registry and serving stack uncached: these suites hold
# the scrape-vs-record and tracer concurrency race tests.
go test -race -count=1 ./internal/obs ./internal/server

echo "== obs overhead gate"
# TestTracerDisabledAllocs is the hard 0 allocs/op gate on the nil
# tracer; the benchmark run alongside prints the ns/op evidence.
go test -run TestTracerDisabledAllocs -bench BenchmarkTracerDisabled -benchtime 1000x -count=1 ./internal/obs

echo "== prepared zero-alloc gate"
# The steady-state 0 allocs/op contract on greedy/RLE/diversity solves
# through a Prepared handle. Skipped automatically under -race (the
# detector instruments allocations), so this is the run that counts.
go test -run 'TestPreparedSolveZeroAllocs|TestPreparedConcurrent' -count=1 ./internal/sched/

echo "== session stream gate"
# The streaming-session layer uncached under -race: the per-event
# differential oracle, the byte-exact resume/replay contract, TTL and
# drain lifecycle, and the pinned-Prepared cache-pressure regression.
# The fuzz pass then walks the same full HTTP event path for a few
# seconds with the seeded differential corpus.
go test -race -run 'TestSession|TestPrepCache' -count=1 ./internal/server/
go test -fuzz FuzzSessionEvents -fuzztime 5s -run '^$' ./internal/server/

echo "== traffic engine race pass"
# The traffic engine suite uncached under -race: the determinism,
# differential-vs-legacy, and truncation tests all run here.
go test -race -short -count=1 ./internal/traffic/

echo "== traffic zero-alloc gate"
# The steady-state 0 allocs/op contract on the n=1000 slot loop.
# Skipped automatically under -race, so this non-race run is the one
# that counts.
go test -run TestEngineSlotZeroAllocs -count=1 ./internal/traffic/

echo "== kernel differential gate"
# The field-build kernels against their references, uncached: the
# α-specialized pow family within 1 ulp of correctly rounded, the
# positive-domain log1p bit-identical to the stdlib, and the
# Factor/FactorRow/FactorSpan consistency contract that keeps the
# dense and sparse backends bit-equal.
go test -run 'TestHalfPow|TestLog1pPos|TestFieldKernel|TestFactorRowSpan' -count=1 ./internal/mathx/ ./internal/radio/

echo "== sparse construction gate"
# The sparse backend must stay conservative-only (stored factors
# bit-identical to dense, truncation never over-admits) and must beat
# the dense fill at scale — n=8000 since the pair-fused dense fill
# moved the crossover past 5000.
go test -run 'TestSparseStoredFactorsExact|TestSparseNeverOverAdmits|TestSparseWorkerCountBitIdentical|TestSparseBuildBeatsDenseAtScale' -count=1 ./internal/sched/

echo "== sharded solver gate"
# The tile-sharded solver under -race: the tile-worker concurrency
# test, the shards=1 ≡ greedy bit-identity and Monte-Carlo feasibility
# oracles, and the clustered-layout fuzz seeds (`make test-shard`).
go test -race -run 'TestSharded|FuzzShardedFeasible' -count=1 ./internal/sched/

echo "== bench smoke"
# One-iteration pass over the prepared/batch/sharded/traffic benchmarks
# proving the JSON emitter works end to end; the full run is
# `make bench-json`.
sh scripts/bench.sh -quick -o /tmp/bench_smoke.json

echo "== bench regression gate"
# The converged fast subset (warm prepared solves, session events,
# traffic slot loop, span lifecycle) against the committed baseline.
# Two concessions to the shared CI box: the comparison is skipped when
# the baseline was recorded at a different CPU count (ns/op across
# core counts is meaningless for parallel benchmarks), and the
# threshold is 40% with one retry — the box's effective CPU speed was
# measured swinging ±40% minute-to-minute (BenchmarkSpanLifecycle
# 159→223 ns on identical code), so a tighter wall-clock gate flakes
# on quiet trees. benchcmp's 10% default remains for manual
# same-conditions comparisons.
baseline=BENCH_PR10.json
base_procs=$(sed -n 's/.*"maxprocs": *\([0-9][0-9]*\).*/\1/p' "$baseline")
cur_procs=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
sh scripts/bench.sh -gate -o /tmp/bench_gate.json
if [ -n "$base_procs" ] && [ "$base_procs" != "$cur_procs" ]; then
    echo "bench gate: baseline at $base_procs CPUs, runner has $cur_procs — advisory only"
    sh scripts/benchcmp.sh "$baseline" /tmp/bench_gate.json 40 || true
elif ! sh scripts/benchcmp.sh "$baseline" /tmp/bench_gate.json 40; then
    echo "bench gate: retrying once (shared-runner noise)"
    sh scripts/bench.sh -gate -o /tmp/bench_gate.json
    sh scripts/benchcmp.sh "$baseline" /tmp/bench_gate.json 40
fi

echo "== serve smoke"
# Boot the daemon end to end: listen, solve one instance over HTTP,
# scrape metrics, drain cleanly.
go test -race -run TestServeSmoke -count=1 ./cmd/schedd/

echo "== metrics smoke"
# Boot again with JSON logs: Prometheus scrape, solver stats in the
# response, trace ID joined across header and access log.
go test -race -run TestMetricsSmoke -count=1 ./cmd/schedd/

echo "== trace smoke"
# Boot once more: a traced n=2000 solve plus a streaming-session event
# must land in the flight recorder with their field-build, solver, and
# session-event spans, and the per-trace endpoint must export loadable
# Chrome trace_event JSON.
go test -race -run TestTraceSmoke -count=1 ./cmd/schedd/

echo "ok"
