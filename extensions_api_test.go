package fadingrls_test

import (
	"bytes"
	"context"
	"testing"

	fadingrls "repro"
)

func TestMultiSlotPlanThroughAPI(t *testing.T) {
	ls, err := fadingrls.Generate(fadingrls.PaperConfig(80), 21, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fadingrls.BuildMultiSlotPlan(pr, fadingrls.RLE{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fadingrls.ValidateMultiSlotPlan(pr, plan); err != nil {
		t.Fatal(err)
	}
	if plan.TotalScheduled() != 80 {
		t.Errorf("plan covers %d of 80 links", plan.TotalScheduled())
	}
	if plan.NumSlots() < 2 {
		t.Errorf("suspiciously few slots: %d", plan.NumSlots())
	}
}

func TestRunTrafficThroughAPI(t *testing.T) {
	ls, err := fadingrls.Generate(fadingrls.PaperConfig(60), 22, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := fadingrls.RunTraffic(pr, fadingrls.TrafficConfig{
		Slots: 120, Arrivals: fadingrls.BernoulliArrivals{P: 0.05}, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived == 0 || res.Delivered == 0 {
		t.Errorf("traffic idle: %+v", res)
	}
	if res.Delivered+res.Dropped+res.Backlog != res.Arrived {
		t.Error("conservation violated through API")
	}
	// Weighted policy through the engine path on the same instance.
	prep := fadingrls.NewPrepared(pr)
	eng, err := fadingrls.NewTrafficEngine(prep, fadingrls.TrafficConfig{
		Slots: 60, Arrivals: fadingrls.PoissonArrivals{Lambda: 0.05},
		Policy: "maxqueue", Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	wres := eng.Run(context.Background())
	if wres.Policy != "maxqueue" || wres.Slots != 60 {
		t.Errorf("weighted run: policy=%q slots=%d", wres.Policy, wres.Slots)
	}
}

func TestRepairThroughAPI(t *testing.T) {
	ls, err := fadingrls.Generate(fadingrls.PaperConfig(250), 23, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	raw := fadingrls.ApproxDiversity{}.Schedule(pr)
	fixed := fadingrls.Repair(pr, raw)
	if !fadingrls.Feasible(pr, fixed) {
		t.Error("repaired schedule infeasible")
	}
}

func TestNoiseAndPowerThroughAPI(t *testing.T) {
	params := fadingrls.DefaultParams()
	params.N0 = 1e-7
	links := []fadingrls.Link{
		{Sender: fadingrls.Point{X: 0, Y: 0}, Receiver: fadingrls.Point{X: 10, Y: 0}, Rate: 1, Power: 2},
		{Sender: fadingrls.Point{X: 120, Y: 0}, Receiver: fadingrls.Point{X: 120, Y: 10}, Rate: 1},
	}
	ls, err := fadingrls.NewLinkSet(links)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, params)
	if err != nil {
		t.Fatal(err)
	}
	s := fadingrls.Exact{}.Schedule(pr)
	if !fadingrls.Feasible(pr, s) {
		t.Error("exact schedule infeasible under noise+power")
	}
	res, err := fadingrls.Simulate(pr, s, fadingrls.SimConfig{Slots: 100, Seed: 2, CoherenceSlots: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 100 {
		t.Errorf("slots = %d", res.Slots)
	}
}

func TestRemainingFacadeWrappers(t *testing.T) {
	// GenerateGrid.
	grid, err := fadingrls.GenerateGrid(3, 200, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Len() != 9 {
		t.Errorf("grid links = %d", grid.Len())
	}
	// ReadLinkSet round trip.
	var buf bytes.Buffer
	if err := grid.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := fadingrls.ReadLinkSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 9 {
		t.Errorf("round trip links = %d", back.Len())
	}
	// Knapsack wrappers.
	knap := fadingrls.KnapsackInstance{
		Items:    []fadingrls.KnapsackItem{{Value: 3, Weight: 2}, {Value: 5, Weight: 4}},
		Capacity: 4,
	}
	v, chosen, err := fadingrls.SolveKnapsack(knap)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 || len(chosen) != 1 || chosen[0] != 1 {
		t.Errorf("knapsack wrapper: v=%v chosen=%v", v, chosen)
	}
	red, err := fadingrls.ReduceKnapsack(knap, fadingrls.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if red.Links.Len() != 3 {
		t.Errorf("reduction links = %d", red.Links.Len())
	}
	// Aggregation wrappers.
	tree, err := fadingrls.BuildAggregationTree(
		[]fadingrls.Point{{X: 10, Y: 0}, {X: 30, Y: 0}}, fadingrls.Point{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := fadingrls.Convergecast(tree, fadingrls.DefaultParams(), fadingrls.Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Latency < 1 {
		t.Errorf("latency = %d", cs.Latency)
	}
	// Mobility wrappers.
	tr, err := fadingrls.NewMobilityTrace(grid, fadingrls.MobilityConfig{
		Region: 600, SpeedMin: 1, SpeedMax: 5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Advance(10)
	if _, err := tr.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Quantile wrapper.
	if got := fadingrls.Quantile([]float64{1, 2, 3}, 0.5); got != 2 {
		t.Errorf("Quantile = %v", got)
	}
	// Diversity/traffic/staleness table wrappers.
	opts := fadingrls.ExperimentOptions{Seed: 1, Instances: 1, Slots: 5}
	if _, err := fadingrls.RunDiversityTable(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := fadingrls.RunStalenessTable(opts); err != nil {
		t.Fatal(err)
	}
	// DLSProto through the registry.
	ls, err := fadingrls.Generate(fadingrls.PaperConfig(40), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := fadingrls.Solve("dlsproto", pr)
	if err != nil {
		t.Fatal(err)
	}
	if !fadingrls.Feasible(pr, s) {
		t.Error("dlsproto schedule infeasible through facade")
	}
}

func TestSimulateAdaptiveThroughAPI(t *testing.T) {
	ls, err := fadingrls.Generate(fadingrls.PaperConfig(120), 29, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := fadingrls.ApproxDiversity{}.Schedule(pr)
	res, err := fadingrls.SimulateAdaptive(pr, s, fadingrls.AdaptiveSimConfig{
		TargetCI: 0.2, BatchSlots: 50, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots == 0 || res.Failures.CI95() > 0.2 {
		t.Errorf("adaptive run: slots=%d ci=%v", res.Slots, res.Failures.CI95())
	}
}
