package fadingrls_test

// One benchmark per figure/table of the paper's evaluation (§V) plus
// the repository's ablation tables. Each bench iteration regenerates
// the corresponding table at a reduced statistical budget (the full
// budget is the cmd/experiments default); reported custom metrics carry
// the headline numbers so `go test -bench` output doubles as a compact
// reproduction record:
//
//   - Fig 5 benches report failures/slot for the worst fading-aware
//     algorithm and the best baseline at the densest sweep point;
//   - Fig 6 benches report the RLE and LDP throughput at N=500 (6a)
//     and α=4.5 (6b);
//   - the ratio bench reports the worst observed OPT/RLE.

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	fadingrls "repro"
	"repro/internal/obs"
)

// benchOpts is the reduced per-iteration budget: 6 instances × 50
// slots keeps an iteration in the hundreds of milliseconds while
// preserving every qualitative shape.
func benchOpts(seed uint64) fadingrls.ExperimentOptions {
	return fadingrls.ExperimentOptions{Seed: seed, Instances: 6, Slots: 50}
}

func runSpec(b *testing.B, id string) *fadingrls.ResultTable {
	b.Helper()
	spec, ok := fadingrls.Experiments()[id]
	if !ok {
		b.Fatalf("spec %q missing", id)
	}
	tab, err := fadingrls.RunExperiment(spec, benchOpts(uint64(b.N)))
	if err != nil {
		b.Fatal(err)
	}
	return tab
}

func BenchmarkFig5a(b *testing.B) {
	b.ReportAllocs()
	var tab *fadingrls.ResultTable
	for i := 0; i < b.N; i++ {
		tab = runSpec(b, "fig5a")
	}
	last := len(tab.X) - 1
	b.ReportMetric(maxMean(tab, last, "ldp", "rle"), "aware-fails/slot")
	b.ReportMetric(minMean(tab, last, "approxlogn", "approxdiversity"), "baseline-fails/slot")
}

func BenchmarkFig5b(b *testing.B) {
	b.ReportAllocs()
	var tab *fadingrls.ResultTable
	for i := 0; i < b.N; i++ {
		tab = runSpec(b, "fig5b")
	}
	// α = 2.5 (index 0) is the harshest point for the baselines.
	b.ReportMetric(maxMean(tab, 0, "ldp", "rle"), "aware-fails/slot")
	b.ReportMetric(minMean(tab, 0, "approxlogn", "approxdiversity"), "baseline-fails/slot")
}

func BenchmarkFig5aAnalytic(b *testing.B) {
	b.ReportAllocs()
	var tab *fadingrls.ResultTable
	for i := 0; i < b.N; i++ {
		tab = runSpec(b, "fig5a-analytic")
	}
	last := len(tab.X) - 1
	b.ReportMetric(minMean(tab, last, "approxlogn", "approxdiversity"), "baseline-Efails/slot")
}

func BenchmarkFig6a(b *testing.B) {
	b.ReportAllocs()
	var tab *fadingrls.ResultTable
	for i := 0; i < b.N; i++ {
		tab = runSpec(b, "fig6a")
	}
	last := len(tab.X) - 1
	b.ReportMetric(tab.Cell("rle", last).Mean(), "rle-throughput@500")
	b.ReportMetric(tab.Cell("ldp", last).Mean(), "ldp-throughput@500")
}

func BenchmarkFig6b(b *testing.B) {
	b.ReportAllocs()
	var tab *fadingrls.ResultTable
	for i := 0; i < b.N; i++ {
		tab = runSpec(b, "fig6b")
	}
	last := len(tab.X) - 1
	b.ReportMetric(tab.Cell("rle", last).Mean(), "rle-throughput@a4.5")
	b.ReportMetric(tab.Cell("ldp", last).Mean(), "ldp-throughput@a4.5")
}

func BenchmarkTableARatios(b *testing.B) {
	b.ReportAllocs()
	var tab *fadingrls.ResultTable
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = fadingrls.RunRatioTable(fadingrls.ExperimentOptions{Seed: uint64(b.N), Instances: 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for i := range tab.X {
		if m := tab.Cell("OPT/rle", i).Max(); m > worst {
			worst = m
		}
	}
	b.ReportMetric(worst, "worst-OPT/RLE")
}

func BenchmarkTableBThm31(b *testing.B) {
	b.ReportAllocs()
	var rows []fadingrls.Thm31Row
	for i := 0; i < b.N; i++ {
		rows = fadingrls.RunThm31Table(uint64(b.N), 20000)
	}
	worst := 0.0
	for _, r := range rows {
		if d := r.Deviations(); d > worst {
			worst = d
		}
	}
	b.ReportMetric(worst, "worst-sigma-dev")
}

func BenchmarkTableCAblationClasses(b *testing.B) {
	b.ReportAllocs()
	var tab *fadingrls.ResultTable
	for i := 0; i < b.N; i++ {
		tab = runSpec(b, "ablation-classes")
	}
	last := len(tab.X) - 1
	b.ReportMetric(tab.Cell("ldp", last).Mean(), "nested@500")
	b.ReportMetric(tab.Cell("ldp-banded", last).Mean(), "banded@500")
}

func BenchmarkTableCAblationC2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runSpec(b, "ablation-c2")
	}
}

func BenchmarkTableDAblationDLS(b *testing.B) {
	b.ReportAllocs()
	var tab *fadingrls.ResultTable
	for i := 0; i < b.N; i++ {
		tab = runSpec(b, "ablation-dls")
	}
	last := len(tab.X) - 1
	b.ReportMetric(tab.Cell("dls-48r", last).Mean(), "dls48@500")
}

func BenchmarkTableEMultislot(b *testing.B) {
	b.ReportAllocs()
	var tab *fadingrls.ResultTable
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = fadingrls.RunMultislotTable(fadingrls.ExperimentOptions{Seed: uint64(b.N), Instances: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(tab.X) - 1
	b.ReportMetric(tab.Cell("rle", last).Mean(), "rle-slots@500")
	b.ReportMetric(tab.Cell("ldp", last).Mean(), "ldp-slots@500")
}

func BenchmarkTableFTraffic(b *testing.B) {
	b.ReportAllocs()
	var tab *fadingrls.ResultTable
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = fadingrls.RunTrafficTable(fadingrls.ExperimentOptions{Seed: uint64(b.N), Instances: 2})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(tab.X) - 1
	b.ReportMetric(tab.Cell("rle", last).Mean(), "rle-goodput@0.2")
	b.ReportMetric(tab.Cell("greedy", last).Mean(), "greedy-goodput@0.2")
}

func BenchmarkTableGStaleness(b *testing.B) {
	b.ReportAllocs()
	var tab *fadingrls.ResultTable
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = fadingrls.RunStalenessTable(fadingrls.ExperimentOptions{Seed: uint64(b.N), Instances: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(tab.X) - 1
	b.ReportMetric(tab.Cell("stale-rle", last).Mean(), "stale-Efails@250")
	b.ReportMetric(tab.Cell("fresh-rle", last).Mean(), "fresh-Efails@250")
}

func BenchmarkTableHDiversity(b *testing.B) {
	b.ReportAllocs()
	var tab *fadingrls.ResultTable
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = fadingrls.RunDiversityTable(fadingrls.ExperimentOptions{Seed: uint64(b.N), Instances: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(tab.X) - 1
	b.ReportMetric(tab.Cell("ldp", last).Mean(), "ldp@6oct")
	b.ReportMetric(tab.Cell("gL", last).Mean(), "gL@6oct")
}

// benchLinks generates an instance at the paper's deployment density
// (300 links per 500×500): the region scales with √n so per-receiver
// interference neighborhoods stay constant and backend costs compare
// like-for-like across sizes.
func benchLinks(b *testing.B, n int) *fadingrls.LinkSet {
	b.Helper()
	cfg := fadingrls.PaperConfig(n)
	cfg.Region = 500 * math.Sqrt(float64(n)/300)
	ls, err := fadingrls.Generate(cfg, 42, 0)
	if err != nil {
		b.Fatal(err)
	}
	return ls
}

var fieldBackends = []struct {
	name string
	opt  func() fadingrls.ProblemOption
}{
	{"dense", fadingrls.WithDenseField},
	{"sparse", func() fadingrls.ProblemOption {
		return fadingrls.WithSparseField(fadingrls.SparseOptions{})
	}},
}

// BenchmarkNewProblem measures interference-field construction alone:
// the dense backend is Θ(n²) factor evaluations, the sparse one is
// output-sensitive in the number of stored near-field pairs.
func BenchmarkNewProblem(b *testing.B) {
	b.ReportAllocs()
	p := fadingrls.DefaultParams()
	for _, n := range []int{300, 1000, 5000} {
		ls := benchLinks(b, n)
		for _, bk := range fieldBackends {
			b.Run(fmt.Sprintf("%s/n=%d", bk.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := fadingrls.NewProblem(ls, p, bk.opt()); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFieldBackends measures the end-to-end pipeline each backend
// feeds — construction, a Greedy schedule, and verification — and
// reports the scheduled link count so the sparse backend's throughput
// cost is visible next to its speed. Both path-loss regimes are
// covered: at the paper's α = 3 the far field decays too slowly for
// truncation to bite (the truncation radius spans the deployment, and
// the tail charge displaces marginal links from budget-saturated
// receivers), so dense wins; at α = 4.5 the near field is genuinely
// local and sparse is the backend that scales.
func BenchmarkFieldBackends(b *testing.B) {
	b.ReportAllocs()
	for _, alpha := range []float64{3, 4.5} {
		p := fadingrls.DefaultParams()
		p.Alpha = alpha
		for _, n := range []int{300, 1000, 5000} {
			ls := benchLinks(b, n)
			for _, bk := range fieldBackends {
				b.Run(fmt.Sprintf("%s/a%g/n=%d", bk.name, alpha, n), func(b *testing.B) {
					b.ReportAllocs()
					var links int
					for i := 0; i < b.N; i++ {
						pr, err := fadingrls.NewProblem(ls, p, bk.opt())
						if err != nil {
							b.Fatal(err)
						}
						s := fadingrls.Greedy{}.Schedule(pr)
						if v := fadingrls.Verify(pr, s); len(v) != 0 {
							b.Fatalf("infeasible schedule: %v", v[0])
						}
						links = s.Len()
					}
					b.ReportMetric(float64(links), "links")
				})
			}
		}
	}
}

// BenchmarkSolveColdBuild is the no-reuse baseline at n=2000 dense:
// every iteration pays the full O(n²) field construction before the
// RLE solve — what a caller who rebuilds the Problem per query pays.
func BenchmarkSolveColdBuild(b *testing.B) {
	b.ReportAllocs()
	ls := benchLinks(b, 2000)
	p := fadingrls.DefaultParams()
	var links int
	for i := 0; i < b.N; i++ {
		pr, err := fadingrls.NewProblem(ls, p)
		if err != nil {
			b.Fatal(err)
		}
		links = fadingrls.RLE{}.Schedule(pr).Len()
	}
	b.ReportMetric(float64(links), "links")
}

// BenchmarkSolveWarmPrepared is the same instance and solver through a
// Prepared handle: the field is built once outside the loop and each
// iteration reuses pooled scratch plus a recycled output buffer. The
// acceptance bar for the prepared-problem work is ≥2× over
// BenchmarkSolveColdBuild; allocs/op documents the steady-state
// zero-allocation property.
func BenchmarkSolveWarmPrepared(b *testing.B) {
	b.ReportAllocs()
	ls := benchLinks(b, 2000)
	prep, err := fadingrls.Prepare(ls, fadingrls.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var buf []int
	var links int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := prep.ScheduleInto(ctx, fadingrls.RLE{}, buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = s.Active[:0]
		links = s.Len()
	}
	b.ReportMetric(float64(links), "links")
}

// BenchmarkSolveWarmTraced is BenchmarkSolveWarmPrepared under the full
// per-request tracing harness schedd runs: every iteration takes a
// pooled trace from obs, opens the solve span with an attached phase
// tracer, solves, finishes the trace, and offers it to a flight
// recorder (which samples a few and recycles the rest). The ns/op
// delta against BenchmarkSolveWarmPrepared is the span-overhead
// acceptance gate: ≤5% at n=2000.
func BenchmarkSolveWarmTraced(b *testing.B) {
	b.ReportAllocs()
	ls := benchLinks(b, 2000)
	prep, err := fadingrls.Prepare(ls, fadingrls.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	rec := obs.NewRecorder(obs.RecorderConfig{Capacity: 8, SampleEvery: 64})
	var buf []int
	var links int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace := obs.NewTrace("beefbeefbeefbeef", "POST /v1/solve")
		ctx := obs.ContextWithSpan(context.Background(), trace.Root())
		solveSp := obs.SpanFrom(ctx).Child("solve")
		solveSp.SetInt("links", int64(ls.Len()))
		tr := obs.NewTracer().AttachSpan(solveSp)
		sctx := obs.WithTracer(obs.ContextWithSpan(ctx, solveSp), tr)
		s, err := prep.ScheduleInto(sctx, fadingrls.RLE{}, buf)
		if err != nil {
			b.Fatal(err)
		}
		solveSp.End()
		trace.Finish(200)
		rec.Record(trace)
		buf = s.Active[:0]
		links = s.Len()
	}
	b.ReportMetric(float64(links), "links")
}

// benchScalePrepared builds the sparse prepared instance the sharded
// scale benches solve: α = 4.5 with a 1e-7 cutoff at the 20000-links-
// per-20000² density of the repository's sparse scale tests, so the
// near field is genuinely local and the stored-pair count grows
// linearly in n rather than quadratically.
func benchScalePrepared(b *testing.B, n int) *fadingrls.Prepared {
	b.Helper()
	cfg := fadingrls.PaperConfig(n)
	cfg.Region = 20000 * math.Sqrt(float64(n)/20000)
	ls, err := fadingrls.Generate(cfg, 42, 0)
	if err != nil {
		b.Fatal(err)
	}
	p := fadingrls.DefaultParams()
	p.Alpha = 4.5
	pr, err := fadingrls.NewProblem(ls, p, fadingrls.WithSparseField(fadingrls.SparseOptions{Cutoff: 1e-7}))
	if err != nil {
		b.Fatal(err)
	}
	return fadingrls.NewPrepared(pr)
}

// BenchmarkShardedVsGreedy is the tile-sharding acceptance record:
// the same prepared sparse instance solved by unsharded greedy and by
// the tile-parallel path (auto shard count). The sharded/greedy ns/op
// ratio at n ≥ 20000 is the ≥2× multi-core speedup gate; the links
// metric makes the quality cost of the reserved-budget tiles visible
// next to the speed.
func BenchmarkShardedVsGreedy(b *testing.B) {
	for _, n := range []int{5000, 20000} {
		prep := benchScalePrepared(b, n)
		for _, algo := range []fadingrls.Algorithm{fadingrls.Greedy{}, fadingrls.Sharded{}} {
			b.Run(fmt.Sprintf("%s/n=%d", algo.Name(), n), func(b *testing.B) {
				b.ReportAllocs()
				ctx := context.Background()
				var buf []int
				var links int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s, err := prep.ScheduleInto(ctx, algo, buf)
					if err != nil {
						b.Fatal(err)
					}
					buf = s.Active[:0]
					links = s.Len()
				}
				b.ReportMetric(float64(links), "links")
			})
		}
	}
}

// BenchmarkSharded100k is the n=100000 end-to-end scale record: one
// iteration pays the sparse field build (reported as build-sec) and
// then solves with the auto-sharded tile path, verifying the merged
// schedule. This is the instance whose dense matrix would be 80 GB.
func BenchmarkSharded100k(b *testing.B) {
	b.ReportAllocs()
	const n = 100000
	cfg := fadingrls.PaperConfig(n)
	cfg.Region = 20000 * math.Sqrt(float64(n)/20000)
	ls, err := fadingrls.Generate(cfg, 42, 0)
	if err != nil {
		b.Fatal(err)
	}
	p := fadingrls.DefaultParams()
	p.Alpha = 4.5
	var buildSec float64
	var links int
	var verified *fadingrls.Problem
	var last fadingrls.Schedule
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		pr, err := fadingrls.NewProblem(ls, p, fadingrls.WithSparseField(fadingrls.SparseOptions{Cutoff: 1e-7}))
		if err != nil {
			b.Fatal(err)
		}
		buildSec = time.Since(t0).Seconds()
		last = fadingrls.NewPrepared(pr).Schedule(fadingrls.Sharded{})
		links = last.Len()
		verified = pr
	}
	// Verify outside the timed region: the independent recheck walks
	// |A|² factor pairs and would otherwise dwarf the solve it audits.
	b.StopTimer()
	if v := fadingrls.Verify(verified, last); len(v) != 0 {
		b.Fatalf("infeasible schedule at n=%d: %v", n, v[0])
	}
	b.ReportMetric(buildSec, "build-sec")
	b.ReportMetric(float64(links), "links")
}

func maxMean(tab *fadingrls.ResultTable, xi int, series ...string) float64 {
	out := tab.Cell(series[0], xi).Mean()
	for _, s := range series[1:] {
		if m := tab.Cell(s, xi).Mean(); m > out {
			out = m
		}
	}
	return out
}

func minMean(tab *fadingrls.ResultTable, xi int, series ...string) float64 {
	out := tab.Cell(series[0], xi).Mean()
	for _, s := range series[1:] {
		if m := tab.Cell(s, xi).Mean(); m < out {
			out = m
		}
	}
	return out
}
