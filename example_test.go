package fadingrls_test

// Runnable godoc examples. Each uses a small hand-built instance so
// the output is deterministic and the examples double as tests.

import (
	"fmt"
	"os"

	fadingrls "repro"
)

// twoIslands builds two far-apart links plus one close pair, so some
// subsets are feasible and some are not.
func twoIslands() *fadingrls.LinkSet {
	ls, err := fadingrls.NewLinkSet([]fadingrls.Link{
		{Sender: fadingrls.Point{X: 0, Y: 0}, Receiver: fadingrls.Point{X: 10, Y: 0}, Rate: 1},
		{Sender: fadingrls.Point{X: 0, Y: 15}, Receiver: fadingrls.Point{X: 10, Y: 15}, Rate: 1},
		{Sender: fadingrls.Point{X: 5000, Y: 0}, Receiver: fadingrls.Point{X: 5010, Y: 0}, Rate: 2},
	})
	if err != nil {
		panic(err)
	}
	return ls
}

func ExampleVerify() {
	pr, _ := fadingrls.NewProblem(twoIslands(), fadingrls.DefaultParams())
	// Links 0 and 1 are 15 apart — far too close for the fading budget.
	bad := fadingrls.Schedule{Active: []int{0, 1}}
	fmt.Println("violations:", len(fadingrls.Verify(pr, bad)))
	// Links 0 and 2 are 5 km apart.
	good := fadingrls.Schedule{Active: []int{0, 2}}
	fmt.Println("violations:", len(fadingrls.Verify(pr, good)))
	// Output:
	// violations: 2
	// violations: 0
}

func ExampleExact_schedule() {
	pr, _ := fadingrls.NewProblem(twoIslands(), fadingrls.DefaultParams())
	s := fadingrls.Exact{}.Schedule(pr)
	// The optimum takes the rate-2 island link plus one of the close
	// pair — never both of the close pair.
	fmt.Println("throughput:", s.Throughput(pr))
	fmt.Println("feasible:", fadingrls.Feasible(pr, s))
	// Output:
	// throughput: 3
	// feasible: true
}

func ExampleSolve() {
	pr, _ := fadingrls.NewProblem(twoIslands(), fadingrls.DefaultParams())
	s, err := fadingrls.Solve("rle", pr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Println("algorithm:", s.Algorithm)
	fmt.Println("links scheduled:", s.Len())
	// Output:
	// algorithm: rle
	// links scheduled: 2
}

func ExampleSuccessProbabilities() {
	pr, _ := fadingrls.NewProblem(twoIslands(), fadingrls.DefaultParams())
	s := fadingrls.Schedule{Active: []int{0, 2}}
	for i, p := range fadingrls.SuccessProbabilities(pr, s) {
		fmt.Printf("link %d: %.6f\n", s.Active[i], p)
	}
	// Output:
	// link 0: 1.000000
	// link 2: 1.000000
}

func ExampleBuildMultiSlotPlan() {
	pr, _ := fadingrls.NewProblem(twoIslands(), fadingrls.DefaultParams())
	plan, _ := fadingrls.BuildMultiSlotPlan(pr, fadingrls.RLE{})
	fmt.Println("slots:", plan.NumSlots())
	fmt.Println("covered:", plan.TotalScheduled())
	// Output:
	// slots: 2
	// covered: 3
}

func ExampleRepair() {
	pr, _ := fadingrls.NewProblem(twoIslands(), fadingrls.DefaultParams())
	// Scheduling everything is infeasible; Repair prunes it down.
	all := fadingrls.Schedule{Active: []int{0, 1, 2}, Algorithm: "all"}
	fixed := fadingrls.Repair(pr, all)
	fmt.Println("feasible:", fadingrls.Feasible(pr, fixed))
	fmt.Println("kept:", fixed.Len())
	// Output:
	// feasible: true
	// kept: 2
}
