GO ?= go

.PHONY: check test test-full test-stream test-shard bench bench-field bench-json bench-serve bench-obs bench-shard bench-traffic build fmt vet fuzz serve serve-smoke metrics-smoke trace-smoke

## check: formatting + vet + build + race-enabled test suite (the gate)
check:
	sh scripts/check.sh

## build: compile every package and command
build:
	$(GO) build ./...

## test: fast suite (skips the 20000-link scale test)
test:
	$(GO) test -short ./...

## test-full: everything, including the large sparse scale test
test-full:
	$(GO) test ./...

## test-stream: the streaming-session suite under the race detector —
## differential oracle, byte-exact resume, drain, cache pinning
test-stream:
	$(GO) vet ./internal/server/ ./internal/mobility/ ./internal/network/
	$(GO) test -race -run 'TestSession|TestPrepCache|TestEditor|TestRebind|TestTracker' -count=1 ./internal/server/ ./internal/mobility/

## bench: interference-backend construction/scheduling benchmarks
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkNewProblem|BenchmarkFieldBackends' -benchtime 2x .

## bench-field: field-construction kernels at a converged budget —
## dense vs sparse builds (n up to 5000), the row-fill vs pair-fused
## fill head-to-head behind FactorPairSpan, and the log1p/pow
## micro-kernels
bench-field:
	$(GO) test -run '^$$' -bench 'BenchmarkNewProblem$$' -benchtime 3s -count=1 .
	$(GO) test -run '^$$' -bench 'BenchmarkFieldFill' -benchtime 2s -count=1 ./internal/radio/
	$(GO) test -run '^$$' -bench 'BenchmarkLog1pPos$$|BenchmarkLog1pStdlib$$|BenchmarkHalfPow' -count=1 ./internal/mathx/

## bench-json: the full performance suite → BENCH_PR10.json
## (Fig 5a, field build, cold vs warm-prepared solve traced and
## untraced, sharded-vs-unsharded greedy plus the n=100k scale record,
## schedd end-to-end, traffic engine, streaming-session event loop,
## span-lifecycle overhead)
bench-json:
	sh scripts/bench.sh

## bench-shard: the tile-sharded scale benches — sharded vs unsharded
## greedy at n=5000/20000 and the n=100000 sparse build + sharded solve
bench-shard:
	$(GO) test -run '^$$' -bench 'BenchmarkShardedVsGreedy$$' -benchtime 3x -count=1 .
	$(GO) test -run '^$$' -bench 'BenchmarkSharded100k$$' -benchtime 1x -count=1 .

## test-shard: the tile-sharded solver suite under the race detector —
## tile-worker concurrency, the shards=1 ≡ greedy bit-identity and
## Monte-Carlo feasibility oracles, and the clustered-layout fuzz seeds
test-shard:
	$(GO) test -race -run 'TestSharded|FuzzShardedFeasible' -count=1 ./internal/sched/

## bench-traffic: traffic-engine per-slot cost (0 allocs/op) and the
## ≥1M-packet n=5000 throughput run with its packets/sec metric
bench-traffic:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineStep$$|BenchmarkEngineThroughput$$' ./internal/traffic/

## bench-serve: schedd cold/prepared-field/warm cache benchmark (n=1000)
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkSolveColdVsWarm|BenchmarkSolveBatch' ./internal/server/

## serve: run the scheduling daemon on the default ports
serve:
	$(GO) run ./cmd/schedd

## serve-smoke: boot schedd, solve one instance over HTTP, assert clean shutdown
serve-smoke:
	$(GO) test -race -run TestServeSmoke -count=1 -v ./cmd/schedd/

## metrics-smoke: boot schedd, check /metrics, response stats, and trace-ID logs agree
metrics-smoke:
	$(GO) test -race -run TestMetricsSmoke -count=1 -v ./cmd/schedd/

## trace-smoke: boot schedd, drive a traced solve and a session event,
## assert /debug/requests retains the field-build and solver spans and
## the per-trace export is loadable trace_event JSON
trace-smoke:
	$(GO) test -race -run TestTraceSmoke -count=1 -v ./cmd/schedd/

## bench-obs: tracer and span overhead (disabled tracer and warm span
## lifecycle must both stay 0 allocs/op)
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkTracer|BenchmarkSpan' ./internal/obs/

## fuzz: a short fuzzing pass over the sparse-safety, fast-pow, and
## decoder targets
fuzz:
	$(GO) test -fuzz FuzzSparseNeverOverAdmits -fuzztime 30s ./internal/sched/
	$(GO) test -fuzz FuzzShardedFeasible -fuzztime 30s ./internal/sched/
	$(GO) test -fuzz FuzzHalfPowRaise -fuzztime 30s ./internal/mathx/
	$(GO) test -fuzz 'FuzzRead$$' -fuzztime 30s ./internal/network/
	$(GO) test -fuzz FuzzReadLinkSet -fuzztime 30s ./internal/network/
	$(GO) test -fuzz FuzzSessionEvents -fuzztime 30s ./internal/server/

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
