package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, out.String())
	}
	return out.String()
}

// quick keeps table runs fast in tests.
var quick = []string{"-instances", "2", "-slots", "10"}

func TestSingleFigure(t *testing.T) {
	out := runCLI(t, append([]string{"-fig", "fig6a"}, quick...)...)
	for _, tok := range []string{"Fig 6(a)", "ldp", "rle", "links N"} {
		if !strings.Contains(out, tok) {
			t.Errorf("output missing %q:\n%s", tok, out)
		}
	}
}

func TestMultipleFiguresCommaList(t *testing.T) {
	out := runCLI(t, append([]string{"-fig", "fig6a,ratio"}, quick...)...)
	if !strings.Contains(out, "Fig 6(a)") || !strings.Contains(out, "Table A") {
		t.Errorf("comma list did not run both:\n%s", out)
	}
}

func TestPlotFlag(t *testing.T) {
	out := runCLI(t, append([]string{"-fig", "fig6a", "-plot"}, quick...)...)
	if !strings.Contains(out, "█") && !strings.Contains(out, "·") && !strings.Contains(out, "*") {
		t.Errorf("-plot produced no chart:\n%s", out)
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	runCLI(t, append([]string{"-fig", "fig6a", "-csv", dir}, quick...)...)
	data, err := os.ReadFile(filepath.Join(dir, "fig6a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "x,series,mean,ci95,n\n") {
		t.Errorf("CSV header wrong: %q", string(data[:40]))
	}
}

func TestManifestWrittenNextToCSV(t *testing.T) {
	dir := t.TempDir()
	runCLI(t, append([]string{"-fig", "fig6a", "-csv", dir, "-seed", "7"}, quick...)...)
	data, err := os.ReadFile(filepath.Join(dir, "fig6a.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		ID          string    `json:"id"`
		Title       string    `json:"title"`
		Seed        uint64    `json:"seed"`
		Instances   int       `json:"instances"`
		Slots       int       `json:"slots"`
		Field       string    `json:"field"`
		Series      []string  `json:"series"`
		Xs          []float64 `json:"xs"`
		GeneratedAt string    `json:"generated_at"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest not valid JSON: %v\n%s", err, data)
	}
	if m.ID != "fig6a" || m.Seed != 7 || m.Instances != 2 || m.Slots != 10 || m.Field != "dense" {
		t.Errorf("manifest parameters wrong: %+v", m)
	}
	if !strings.Contains(m.Title, "Fig 6(a)") {
		t.Errorf("manifest title = %q", m.Title)
	}
	if len(m.Series) == 0 || len(m.Xs) == 0 || m.GeneratedAt == "" {
		t.Errorf("manifest incomplete: %+v", m)
	}
}

func TestVerboseProgressLogs(t *testing.T) {
	out := runCLI(t, append([]string{"-fig", "fig6a", "-v"}, quick...)...)
	for _, tok := range []string{"experiment start", "experiment done", "id=fig6a", "duration="} {
		if !strings.Contains(out, tok) {
			t.Errorf("-v output missing %q:\n%s", tok, out)
		}
	}
}

func TestCustomTables(t *testing.T) {
	out := runCLI(t, append([]string{"-fig", "multislot"}, quick...)...)
	if !strings.Contains(out, "Table E") {
		t.Errorf("multislot table missing:\n%s", out)
	}
	out = runCLI(t, append([]string{"-fig", "staleness"}, quick...)...)
	if !strings.Contains(out, "Table G") {
		t.Errorf("staleness table missing:\n%s", out)
	}
}

func TestUnknownFigureErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "fig99"}, &out); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestThm31Table(t *testing.T) {
	out := runCLI(t, "-fig", "thm31", "-trials", "2000")
	if !strings.Contains(out, "Table B") || !strings.Contains(out, "closed-form") {
		t.Errorf("thm31 output wrong:\n%s", out)
	}
	if strings.Count(out, "\n") < 13 {
		t.Errorf("thm31 table too short:\n%s", out)
	}
}

func TestDiversityAndTrafficTables(t *testing.T) {
	out := runCLI(t, append([]string{"-fig", "diversity"}, quick...)...)
	if !strings.Contains(out, "Table H") {
		t.Errorf("diversity table missing:\n%s", out)
	}
	out = runCLI(t, append([]string{"-fig", "traffic"}, quick...)...)
	if !strings.Contains(out, "Table F") {
		t.Errorf("traffic table missing:\n%s", out)
	}
	out = runCLI(t, append([]string{"-fig", "stability"}, quick...)...)
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "maxqueue") {
		t.Errorf("stability table missing:\n%s", out)
	}
}
