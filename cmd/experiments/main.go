// Command experiments regenerates the paper's figures and the
// repository's ablation tables. Each figure renders as an aligned text
// table (mean ± 95% CI per cell) and optionally as CSV files for
// external plotting.
//
// Examples:
//
//	experiments -fig all
//	experiments -fig fig5a -instances 50 -slots 200
//	experiments -fig fig6b -csv out/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	fadingrls "repro"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run executes the CLI with explicit args and output so tests can
// drive it end to end.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig       = fs.String("fig", "all", "experiment id (fig5a, fig5b, fig6a, fig6b, ratio, thm31, ablation-*, or 'all')")
		seed      = fs.Uint64("seed", 2017, "base seed (2017 reproduces EXPERIMENTS.md)")
		instances = fs.Int("instances", 20, "independent deployments per sweep point")
		slots     = fs.Int("slots", 100, "Monte-Carlo slots per schedule")
		csvDir    = fs.String("csv", "", "also write <id>.csv files into this directory")
		chart     = fs.Bool("plot", false, "also draw each table as an ASCII chart")
		trials    = fs.Int("trials", 0, "Monte-Carlo trials per thm31 row (0 = 100000)")
		field     = fs.String("field", "dense", "interference backend for every sweep problem: dense or sparse")
		cutoff    = fs.Float64("cutoff", 0, "sparse backend truncation cutoff (0 = default)")
		verbose   = fs.Bool("v", false, "log per-experiment progress (start, duration) to the output stream")
		traceOut  = fs.String("trace-out", "", "write a span trace of the run (one span per experiment) as Chrome trace_event JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := obs.Discard()
	if *verbose {
		logger = obs.NewLogger(out, obs.LogConfig{})
	}

	fieldOpt, err := fadingrls.FieldOption(*field, *cutoff)
	if err != nil {
		return err
	}
	opts := fadingrls.ExperimentOptions{
		Seed: *seed, Instances: *instances, Slots: *slots,
		FieldOptions: []fadingrls.ProblemOption{fieldOpt},
	}
	specs := fadingrls.Experiments()

	custom := map[string]bool{"ratio": true, "thm31": true, "multislot": true, "traffic": true, "stability": true, "staleness": true, "diversity": true}
	var ids []string
	switch {
	case *fig == "all":
		for id := range specs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		ids = append(ids, "ratio", "thm31", "multislot", "traffic", "stability", "staleness", "diversity")
	default:
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			if _, ok := specs[id]; !ok && !custom[id] {
				return fmt.Errorf("unknown experiment %q (have %v, ratio, thm31, multislot, traffic)",
					id, sortedKeys(specs))
			}
			ids = append(ids, id)
		}
	}

	ec := emitConfig{
		csvDir: *csvDir, chart: *chart,
		seed: *seed, instances: *instances, slots: *slots,
		field: *field, cutoff: *cutoff,
		log: logger,
	}
	var spanTrace *obs.Trace
	if *traceOut != "" {
		spanTrace = obs.NewTraceCap(obs.NewTraceID(), "experiments", 1<<12)
	}
	for _, id := range ids {
		logger.Info("experiment start", slog.String("id", id),
			slog.Int("instances", *instances), slog.Int("slots", *slots))
		start := time.Now()
		var expSp obs.Span
		if spanTrace != nil {
			expSp = spanTrace.Root().Child("experiment")
			expSp.SetStr("id", id)
		}
		switch id {
		case "ratio":
			tab, err := fadingrls.RunRatioTable(opts)
			if err != nil {
				return err
			}
			if err := emit(out, tab, id, ec); err != nil {
				return err
			}
		case "thm31":
			rows := fadingrls.RunThm31Table(*seed, *trials)
			printThm31(out, rows)
		case "multislot":
			tab, err := fadingrls.RunMultislotTable(opts)
			if err != nil {
				return err
			}
			if err := emit(out, tab, id, ec); err != nil {
				return err
			}
		case "traffic":
			tab, err := fadingrls.RunTrafficTable(opts)
			if err != nil {
				return err
			}
			if err := emit(out, tab, id, ec); err != nil {
				return err
			}
		case "stability":
			tab, err := fadingrls.RunStabilityTable(opts)
			if err != nil {
				return err
			}
			if err := emit(out, tab, id, ec); err != nil {
				return err
			}
		case "diversity":
			tab, err := fadingrls.RunDiversityTable(opts)
			if err != nil {
				return err
			}
			if err := emit(out, tab, id, ec); err != nil {
				return err
			}
		case "staleness":
			tab, err := fadingrls.RunStalenessTable(opts)
			if err != nil {
				return err
			}
			if err := emit(out, tab, id, ec); err != nil {
				return err
			}
		default:
			tab, err := fadingrls.RunExperiment(specs[id], opts)
			if err != nil {
				return err
			}
			if err := emit(out, tab, id, ec); err != nil {
				return err
			}
		}
		expSp.End()
		logger.Info("experiment done", slog.String("id", id),
			obs.DurationSeconds("duration", time.Since(start)))
	}
	if spanTrace != nil {
		spanTrace.Finish(0)
		snap := spanTrace.Snapshot()
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := snap.WriteTraceEvent(f); err != nil {
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote span trace to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
	}
	return nil
}

// emitConfig carries the run parameters emit records into each
// experiment's manifest, plus the progress logger.
type emitConfig struct {
	csvDir    string
	chart     bool
	seed      uint64
	instances int
	slots     int
	field     string
	cutoff    float64
	log       *slog.Logger
}

// manifest is the JSON provenance record written next to each CSV: the
// exact knobs that produced the file, so a results directory is
// self-describing long after the shell history is gone.
type manifest struct {
	ID          string    `json:"id"`
	Title       string    `json:"title"`
	Seed        uint64    `json:"seed"`
	Instances   int       `json:"instances"`
	Slots       int       `json:"slots"`
	Field       string    `json:"field"`
	Cutoff      float64   `json:"cutoff,omitempty"`
	Series      []string  `json:"series"`
	Xs          []float64 `json:"xs"`
	GeneratedAt string    `json:"generated_at"`
}

func emit(out io.Writer, tab *fadingrls.ResultTable, id string, cfg emitConfig) error {
	if err := tab.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if cfg.chart {
		if err := tab.RenderChart(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if cfg.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.csvDir, 0o755); err != nil {
		return err
	}
	csvPath := filepath.Join(cfg.csvDir, id+".csv")
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tab.RenderCSV(f); err != nil {
		return err
	}
	m := manifest{
		ID: id, Title: tab.Title,
		Seed: cfg.seed, Instances: cfg.instances, Slots: cfg.slots,
		Field: cfg.field, Cutoff: cfg.cutoff,
		Series: tab.Order, Xs: tab.X,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	encoded, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	manifestPath := filepath.Join(cfg.csvDir, id+".manifest.json")
	if err := os.WriteFile(manifestPath, append(encoded, '\n'), 0o644); err != nil {
		return err
	}
	cfg.log.Info("results written", slog.String("csv", csvPath), slog.String("manifest", manifestPath))
	return nil
}

func printThm31(out io.Writer, rows []fadingrls.Thm31Row) {
	fmt.Fprintln(out, "Table B: Theorem 3.1 closed form vs Monte-Carlo")
	fmt.Fprintln(out, "-----------------------------------------------")
	fmt.Fprintf(out, "%-8s%-14s%-14s%-14s%-10s\n", "alpha", "interferers", "closed-form", "empirical", "sigmas")
	for _, r := range rows {
		fmt.Fprintf(out, "%-8.3g%-14d%-14.6f%-14.6f%-10.2f\n",
			r.Alpha, r.Interferers, r.ClosedForm, r.Empirical, r.Deviations())
	}
	fmt.Fprintln(out)
}

func sortedKeys(m map[string]fadingrls.ExperimentSpec) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
