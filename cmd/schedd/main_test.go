package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/network"
)

// syncBuffer is an io.Writer safe to read while run() writes to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// TestServeSmoke is the `make serve-smoke` gate: boot schedd on
// ephemeral ports, solve one instance over real HTTP, hit the debug
// port, then cancel and require a clean drain.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0"}, out)
	}()

	// Wait for both listeners to announce themselves.
	var apiAddr, debugAddr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil && strings.Contains(out.String(), "debug") {
			apiAddr = m[1]
			if dm := regexp.MustCompile(`debug \(pprof, expvar\) on (\S+)`).FindStringSubmatch(out.String()); dm != nil {
				debugAddr = dm[1]
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("schedd never announced listeners; output:\n%s", out.String())
		}
		select {
		case err := <-done:
			t.Fatalf("schedd exited early: %v\n%s", err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}

	ls, err := network.Generate(network.PaperConfig(20), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	reqBody, err := json.Marshal(map[string]interface{}{
		"algorithm": "rle",
		"links":     ls.Links(),
		"mc_slots":  20,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/solve", apiAddr), "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatalf("solve request failed: %v", err)
	}
	var solved struct {
		Feasible   bool  `json:"feasible"`
		Active     []int `json:"active"`
		Simulation *struct {
			Slots int `json:"slots"`
		} `json:"simulation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&solved); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !solved.Feasible || solved.Simulation == nil {
		t.Fatalf("smoke solve wrong: status %d, %+v", resp.StatusCode, solved)
	}

	// The private port serves pprof and the metric map.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/vars", debugAddr))
	if err != nil {
		t.Fatalf("debug vars failed: %v", err)
	}
	var vars struct {
		Schedd struct {
			Requests int64 `json:"requests_total"`
		} `json:"schedd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vars.Schedd.Requests < 1 {
		t.Errorf("metrics did not count the smoke request: %+v", vars)
	}

	// Clean shutdown on signal (ctx cancel stands in for SIGTERM).
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("schedd did not shut down within 10s")
	}
	if !strings.Contains(out.String(), "clean shutdown") {
		t.Errorf("missing clean-shutdown line:\n%s", out.String())
	}
}

// TestMetricsSmoke is the `make metrics-smoke` gate: boot schedd with
// JSON logs, drive one solve, and check the three observability
// surfaces agree — the Prometheus scrape moved, the response carried
// solver stats and a trace ID, and the access log carried the same
// trace ID.
func TestMetricsSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-debug-addr", "", "-log-format", "json"}, out)
	}()

	var apiAddr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			apiAddr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("schedd never announced its listener; output:\n%s", out.String())
		}
		select {
		case err := <-done:
			t.Fatalf("schedd exited early: %v\n%s", err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}

	ls, err := network.Generate(network.PaperConfig(12), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	reqBody, err := json.Marshal(map[string]interface{}{"algorithm": "ldp", "links": ls.Links()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/solve", apiAddr), "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatalf("solve request failed: %v", err)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	var solved struct {
		Stats *struct {
			Algorithm string `json:"algorithm"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&solved); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if traceID == "" {
		t.Error("solve response missing X-Trace-Id")
	}
	if solved.Stats == nil || solved.Stats.Algorithm != "ldp" {
		t.Errorf("solve response missing solver stats: %+v", solved.Stats)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/metrics", apiAddr))
	if err != nil {
		t.Fatalf("metrics scrape failed: %v", err)
	}
	scrape := make([]byte, 1<<20)
	n, _ := resp.Body.Read(scrape)
	resp.Body.Close()
	exposition := string(scrape[:n])
	for _, want := range []string{
		"# TYPE schedd_requests_total counter",
		`schedd_solves_total{algorithm="ldp"} 1`,
		"schedd_request_duration_seconds_count",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("scrape missing %q:\n%s", want, exposition)
		}
	}

	if !strings.Contains(out.String(), fmt.Sprintf("%q:%q", "trace_id", traceID)) {
		t.Errorf("access log missing trace_id %s:\n%s", traceID, out.String())
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("schedd did not shut down within 10s")
	}
}

// TestRunRejectsBadFlags keeps the CLI surface honest.
func TestRunRejectsBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-definitely-not-a-flag"}, &syncBuffer{})
	if err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunFailsOnUnbindableAddress covers the startup error path.
func TestRunFailsOnUnbindableAddress(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, &syncBuffer{})
	if err == nil {
		t.Fatal("unbindable address accepted")
	}
}
