package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/network"
)

// syncBuffer is an io.Writer safe to read while run() writes to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// TestServeSmoke is the `make serve-smoke` gate: boot schedd on
// ephemeral ports, solve one instance over real HTTP, hit the debug
// port, then cancel and require a clean drain.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0"}, out)
	}()

	// Wait for both listeners to announce themselves.
	var apiAddr, debugAddr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil && strings.Contains(out.String(), "debug") {
			apiAddr = m[1]
			if dm := regexp.MustCompile(`debug \(pprof, expvar\) on (\S+)`).FindStringSubmatch(out.String()); dm != nil {
				debugAddr = dm[1]
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("schedd never announced listeners; output:\n%s", out.String())
		}
		select {
		case err := <-done:
			t.Fatalf("schedd exited early: %v\n%s", err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}

	ls, err := network.Generate(network.PaperConfig(20), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	reqBody, err := json.Marshal(map[string]interface{}{
		"algorithm": "rle",
		"links":     ls.Links(),
		"mc_slots":  20,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/solve", apiAddr), "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatalf("solve request failed: %v", err)
	}
	var solved struct {
		Feasible   bool  `json:"feasible"`
		Active     []int `json:"active"`
		Simulation *struct {
			Slots int `json:"slots"`
		} `json:"simulation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&solved); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !solved.Feasible || solved.Simulation == nil {
		t.Fatalf("smoke solve wrong: status %d, %+v", resp.StatusCode, solved)
	}

	// The private port serves pprof and the metric map.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/vars", debugAddr))
	if err != nil {
		t.Fatalf("debug vars failed: %v", err)
	}
	var vars struct {
		Schedd struct {
			Requests int64 `json:"requests_total"`
		} `json:"schedd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vars.Schedd.Requests < 1 {
		t.Errorf("metrics did not count the smoke request: %+v", vars)
	}

	// Clean shutdown on signal (ctx cancel stands in for SIGTERM).
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("schedd did not shut down within 10s")
	}
	if !strings.Contains(out.String(), "clean shutdown") {
		t.Errorf("missing clean-shutdown line:\n%s", out.String())
	}
}

// TestMetricsSmoke is the `make metrics-smoke` gate: boot schedd with
// JSON logs, drive one solve, and check the three observability
// surfaces agree — the Prometheus scrape moved, the response carried
// solver stats and a trace ID, and the access log carried the same
// trace ID.
func TestMetricsSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-debug-addr", "", "-log-format", "json"}, out)
	}()

	var apiAddr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			apiAddr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("schedd never announced its listener; output:\n%s", out.String())
		}
		select {
		case err := <-done:
			t.Fatalf("schedd exited early: %v\n%s", err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}

	ls, err := network.Generate(network.PaperConfig(12), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	reqBody, err := json.Marshal(map[string]interface{}{"algorithm": "ldp", "links": ls.Links()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/solve", apiAddr), "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatalf("solve request failed: %v", err)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	var solved struct {
		Stats *struct {
			Algorithm string `json:"algorithm"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&solved); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if traceID == "" {
		t.Error("solve response missing X-Trace-Id")
	}
	if solved.Stats == nil || solved.Stats.Algorithm != "ldp" {
		t.Errorf("solve response missing solver stats: %+v", solved.Stats)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/metrics", apiAddr))
	if err != nil {
		t.Fatalf("metrics scrape failed: %v", err)
	}
	scrape := make([]byte, 1<<20)
	n, _ := resp.Body.Read(scrape)
	resp.Body.Close()
	exposition := string(scrape[:n])
	for _, want := range []string{
		"# TYPE schedd_requests_total counter",
		`schedd_solves_total{algorithm="ldp"} 1`,
		"schedd_request_duration_seconds_count",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("scrape missing %q:\n%s", want, exposition)
		}
	}

	if !strings.Contains(out.String(), fmt.Sprintf("%q:%q", "trace_id", traceID)) {
		t.Errorf("access log missing trace_id %s:\n%s", traceID, out.String())
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("schedd did not shut down within 10s")
	}
}

// TestTraceSmoke is the `make trace-smoke` gate: boot schedd, drive a
// traced n=2000 solve plus one streaming-session event, then read the
// flight recorder back — /debug/requests must list both traces with
// their field-build, solver, and session-event spans, and the per-trace
// endpoint must export nested Chrome trace_event JSON.
func TestTraceSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-debug-addr", ""}, out)
	}()

	var apiAddr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			apiAddr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("schedd never announced its listener; output:\n%s", out.String())
		}
		select {
		case err := <-done:
			t.Fatalf("schedd exited early: %v\n%s", err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}

	// A traced solve at n=2000: big enough that the dense field build
	// and every solver phase record real spans. The client supplies the
	// trace ID, so the recorder lookup below needs no header plumbing.
	const solveTrace = "c0ffee00c0ffee00"
	ls, err := network.Generate(network.PaperConfig(2000), 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	reqBody, err := json.Marshal(map[string]interface{}{"algorithm": "rle", "links": ls.Links()})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, fmt.Sprintf("http://%s/v1/solve", apiAddr), bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", solveTrace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("solve request failed: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != solveTrace {
		t.Fatalf("middleware did not adopt inbound trace ID: got %q", got)
	}

	// One streaming-session event so the dispatch path records too:
	// register a small instance, stream a single retune, read the delta.
	sls, err := network.Generate(network.PaperConfig(16), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	sessBody, err := json.Marshal(map[string]interface{}{"algorithm": "greedy", "links": sls.Links()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(fmt.Sprintf("http://%s/v1/session", apiAddr), "application/json", bytes.NewReader(sessBody))
	if err != nil {
		t.Fatalf("session create failed: %v", err)
	}
	var sess struct {
		SessionID string `json:"session_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sess.SessionID == "" {
		t.Fatalf("session create: status %d, id %q", resp.StatusCode, sess.SessionID)
	}
	pr, pw := io.Pipe()
	evReq, err := http.NewRequest(http.MethodPost,
		fmt.Sprintf("http://%s/v1/session/%s/events", apiAddr, sess.SessionID), pr)
	if err != nil {
		t.Fatal(err)
	}
	evReq.Header.Set("Content-Type", "application/x-ndjson")
	evResp, err := http.DefaultClient.Do(evReq)
	if err != nil {
		t.Fatalf("event stream failed: %v", err)
	}
	defer evResp.Body.Close()
	if evResp.StatusCode != http.StatusOK {
		t.Fatalf("event stream status %d", evResp.StatusCode)
	}
	if _, err := pw.Write([]byte(`{"type":"retune","eps":0.02}` + "\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(evResp.Body)
	if !sc.Scan() {
		t.Fatalf("no delta frame: %v", sc.Err())
	}
	pw.Close()

	// The recorder must have kept both traces with their span trees.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/requests?n=50", apiAddr))
	if err != nil {
		t.Fatalf("debug requests failed: %v", err)
	}
	var dbg struct {
		Recorder struct {
			Seen int64 `json:"seen"`
		} `json:"recorder"`
		Recent []struct {
			TraceID string `json:"trace_id"`
			Spans   []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"recent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dbg.Recorder.Seen < 2 {
		t.Fatalf("recorder saw %d traces, want ≥2", dbg.Recorder.Seen)
	}
	names := map[string]map[string]bool{}
	for _, tr := range dbg.Recent {
		set := map[string]bool{}
		for _, sp := range tr.Spans {
			set[sp.Name] = true
		}
		names[tr.TraceID] = set
	}
	solveSpans, ok := names[solveTrace]
	if !ok {
		t.Fatalf("solve trace %s not in recorder; have %v", solveTrace, names)
	}
	for _, want := range []string{"field_build", "dense_fill", "solve"} {
		if !solveSpans[want] {
			t.Errorf("solve trace missing %q span; have %v", want, solveSpans)
		}
	}
	sessionTraced := false
	for _, set := range names {
		if set["session_event"] {
			sessionTraced = true
		}
	}
	if !sessionTraced {
		t.Errorf("no retained trace carries a session_event span; have %v", names)
	}

	// The per-trace export is Chrome trace_event JSON with the nested
	// complete events chrome://tracing renders.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/requests/%s", apiAddr, solveTrace))
	if err != nil {
		t.Fatalf("trace export failed: %v", err)
	}
	var export struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&export); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	complete := 0
	for _, ev := range export.TraceEvents {
		if ev.Ph == "X" {
			complete++
		}
	}
	if complete < 4 {
		t.Errorf("trace export has %d complete events, want ≥4: %+v", complete, export.TraceEvents)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("schedd did not shut down within 10s")
	}
}

// TestRunRejectsBadFlags keeps the CLI surface honest.
func TestRunRejectsBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-definitely-not-a-flag"}, &syncBuffer{})
	if err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunFailsOnUnbindableAddress covers the startup error path.
func TestRunFailsOnUnbindableAddress(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, &syncBuffer{})
	if err == nil {
		t.Fatal("unbindable address accepted")
	}
}
