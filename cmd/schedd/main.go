// Command schedd is the Fading-R-LS scheduling daemon: a long-running
// HTTP service answering one-shot link-capacity queries over the
// registered solvers.
//
//	schedd -addr :8080 -debug-addr 127.0.0.1:6060
//
// POST /v1/solve takes a JSON link set plus model parameters and
// returns the activation set (with solver trace stats) and per-link
// success probabilities; POST /v1/solve/batch solves one link set
// under many algorithm/ε configs with a single interference-field
// build; POST /v1/traffic runs a queued-traffic simulation (arrival
// process, queue policy, deadline-truncated) over the same cached
// interference fields; POST /v1/session opens a streaming scheduling
// session — the client streams move/add/remove/retune events over one
// long-lived request and receives re-solved schedule deltas, resuming
// after a disconnect via GET /v1/session/{id}/deltas?seq=N; see the
// README's "Serving" and "Streaming sessions" sections for the
// schemas.
// GET /v1/algorithms lists the registry; GET /metrics serves
// Prometheus text exposition; /debug/vars serves expvar metrics; the
// debug address additionally serves net/http/pprof and should stay on
// loopback. Structured access logs (-log-format, -log-level) carry the
// same per-request trace ID the X-Trace-Id response header reports.
// Every request is span-traced into a bounded flight recorder
// (-trace-ring, -trace-sample): GET /debug/requests lists recent and
// slowest traces, GET /debug/requests/{traceID} exports one as Chrome
// trace_event JSON (load in chrome://tracing or Perfetto), and
// GET /debug/state snapshots live sessions, cache residency, and pool
// occupancy. SIGINT/SIGTERM drain in-flight solves before exit.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
}

// publishOnce guards the process-global expvar registration so tests
// can call run repeatedly in one process (expvar.Publish panics on
// duplicate names).
var publishOnce sync.Once

// run boots the daemon with explicit args and log sink, serves until
// ctx is canceled, then drains in-flight requests. Tests drive it end
// to end: the actual listen addresses are announced on out.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("schedd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "API listen address")
		debugAddr = fs.String("debug-addr", "127.0.0.1:6060", "private pprof/metrics listen address ('' disables)")
		workers   = fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
		cacheSize = fs.Int("cache", 256, "result cache capacity in responses (negative disables)")
		prepCache = fs.Int("prep-cache", 16, "prepared interference-field cache capacity in link sets (negative disables)")
		maxBody   = fs.Int64("max-body", 8<<20, "request body size limit in bytes")
		maxLinks  = fs.Int("max-links", 20000, "per-request instance size limit")
		timeout   = fs.Duration("timeout", 30*time.Second, "default per-request solve deadline")
		maxTO     = fs.Duration("max-timeout", 2*time.Minute, "largest per-request deadline a client may ask for")
		maxSess   = fs.Int("max-sessions", 256, "max concurrently open streaming sessions (negative disables sessions)")
		sessTTL   = fs.Duration("session-ttl", 5*time.Minute, "evict sessions idle (no event, no live stream) this long")
		traceRing = fs.Int("trace-ring", 128, "flight-recorder capacity in retained request traces (negative disables span tracing)")
		traceSmpl = fs.Int("trace-sample", 1, "keep every Nth non-outlier trace (negative keeps outliers only; errors and slow requests are always kept)")
		drain     = fs.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight solves")
		logFormat = fs.String("log-format", "text", "structured log format: text or json")
		logLevel  = fs.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLevel, err)
	}
	if *logFormat != "text" && *logFormat != "json" {
		return fmt.Errorf("bad -log-format %q (want text or json)", *logFormat)
	}
	logger := obs.NewLogger(out, obs.LogConfig{Level: level, JSON: *logFormat == "json"})

	srv := server.New(server.Config{
		Workers:           *workers,
		CacheSize:         *cacheSize,
		PreparedCacheSize: *prepCache,
		MaxBodyBytes:      *maxBody,
		MaxLinks:          *maxLinks,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTO,
		MaxSessions:       *maxSess,
		SessionTTL:        *sessTTL,
		TraceRing:         *traceRing,
		TraceSampleEvery:  *traceSmpl,
		Logger:            logger,
	})
	publishOnce.Do(func() { expvar.Publish("schedd", srv.Metrics().Vars()) })

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "schedd: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	errs := make(chan error, 2)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errs <- err
		}
	}()

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			httpSrv.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Fprintf(out, "schedd: debug (pprof, expvar) on %s\n", dln.Addr())
		debugSrv = &http.Server{Handler: srv.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := debugSrv.Serve(dln); !errors.Is(err, http.ErrServerClosed) {
				errs <- err
			}
		}()
	}

	select {
	case err := <-errs:
		return err
	case <-ctx.Done():
	}

	// Drain: close the session layer first — live event streams and
	// long-polls are long-lived requests that would otherwise hold
	// Shutdown open for the whole budget — then stop accepting and let
	// in-flight solves finish under their own request deadlines, capped
	// by the drain budget.
	fmt.Fprintf(out, "schedd: shutting down, draining in-flight requests\n")
	srv.Close()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = httpSrv.Shutdown(drainCtx)
	if debugSrv != nil {
		if derr := debugSrv.Shutdown(drainCtx); err == nil {
			err = derr
		}
	}
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintf(out, "schedd: clean shutdown\n")
	return nil
}
