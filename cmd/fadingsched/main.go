// Command fadingsched generates or loads a Fading-R-LS instance, runs
// one or more scheduling algorithms on it, verifies the results against
// the Corollary 3.1 feasibility condition, and optionally measures
// failed transmissions by Monte-Carlo simulation.
//
// Examples:
//
//	fadingsched -n 300 -seed 42 -algo rle,ldp -slots 200
//	fadingsched -n 50 -save instance.json
//	fadingsched -load instance.json -algo all -alpha 3.5
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"strings"
	"time"

	fadingrls "repro"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fadingsched:", err)
		os.Exit(1)
	}
}

// run executes the CLI with explicit args and output so tests can
// drive it end to end.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fadingsched", flag.ContinueOnError)
	var (
		n      = fs.Int("n", 300, "number of links to generate")
		seed   = fs.Uint64("seed", 42, "deployment seed")
		index  = fs.Uint64("index", 0, "deployment index (varies the instance for a fixed seed)")
		region = fs.Float64("region", 500, "deployment square side")
		minLen = fs.Float64("minlen", 5, "minimum link length")
		maxLen = fs.Float64("maxlen", 20, "maximum link length")
		rate   = fs.Float64("rate", 1, "link data rate (uniform)")
		rateHi = fs.Float64("ratemax", 0, "upper rate bound for heterogeneous rates (0 = uniform)")

		alpha = fs.Float64("alpha", 3, "path-loss exponent α")
		gamma = fs.Float64("gamma", 1, "decoding threshold γ_th")
		eps   = fs.Float64("eps", 0.01, "acceptable error probability ε")

		algos = fs.String("algo", "ldp,rle", "comma-separated algorithms, or 'all'")
		slots = fs.Int("slots", 0, "Monte-Carlo slots for failure measurement (0 = skip)")

		field  = fs.String("field", "dense", "interference backend: dense (exact n×n matrix) or sparse (truncated near field, scales past the matrix)")
		cutoff = fs.Float64("cutoff", 0, "sparse backend truncation cutoff (smallest stored factor; 0 = default fraction of gamma_eps)")

		load = fs.String("load", "", "load instance JSON instead of generating")
		save = fs.String("save", "", "save the instance JSON and exit")

		verbose  = fs.Bool("v", false, "log solve progress (start, duration) to the output stream")
		trace    = fs.Bool("trace", false, "print each solve's phase timings and algorithm counters")
		traceOut = fs.String("trace-out", "", "write the run's span trace as Chrome trace_event JSON to this file (load in chrome://tracing or Perfetto)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := obs.Discard()
	if *verbose {
		logger = obs.NewLogger(out, obs.LogConfig{})
	}

	var (
		ls  *fadingrls.LinkSet
		err error
	)
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		if ls, err = fadingrls.ReadLinkSet(f); err != nil {
			return err
		}
	} else {
		cfg := fadingrls.GenConfig{
			N: *n, Region: *region,
			MinLinkLen: *minLen, MaxLinkLen: *maxLen,
			Rate: *rate, RateMax: *rateHi,
		}
		ls, err = fadingrls.Generate(cfg, *seed, *index)
		if err != nil {
			return err
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ls.Write(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "saved %d links to %s\n", ls.Len(), *save)
		return nil
	}

	params := fadingrls.DefaultParams()
	params.Alpha = *alpha
	params.GammaTh = *gamma
	params.Eps = *eps
	fieldOpt, err := fadingrls.FieldOption(*field, *cutoff)
	if err != nil {
		return err
	}
	// With -trace-out the whole run records into one span trace — the
	// field build and each solve (phase spans included) — exported as a
	// trace_event file at the end.
	runCtx := context.Background()
	var spanTrace *obs.Trace
	if *traceOut != "" {
		spanTrace = obs.NewTraceCap(obs.NewTraceID(), "fadingsched", 1<<14)
		runCtx = obs.ContextWithSpan(runCtx, spanTrace.Root())
	}
	pr, err := fadingrls.NewProblemContext(runCtx, ls, params, fieldOpt)
	if err != nil {
		return err
	}
	delta, _ := ls.MinLength()
	fmt.Fprintf(out, "instance: %d links, lengths [%.3g, %.3g], g(L) = %d\n",
		ls.Len(), delta, ls.MaxLength(), ls.Diversity())
	fmt.Fprintf(out, "model: alpha=%g gamma_th=%g eps=%g (gamma_eps=%.5g) field=%s\n\n",
		params.Alpha, params.GammaTh, params.Eps, params.GammaEps(), pr.FieldName())

	names := strings.Split(*algos, ",")
	if *algos == "all" {
		names = fadingrls.Algorithms()
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "exact" && ls.Len() > 24 {
			fmt.Fprintf(out, "%-16s skipped (exact solver caps at 24 links)\n", name)
			continue
		}
		solveSp := obs.SpanFrom(runCtx).Child("solve")
		if solveSp.Enabled() {
			solveSp.SetStr("algorithm", name)
			solveSp.SetInt("links", int64(ls.Len()))
		}
		var tr *obs.Tracer
		ctx := runCtx
		if *trace || solveSp.Enabled() {
			// The tracer feeds -trace's printed phase table and, attached
			// to the span, mirrors each phase into the -trace-out file.
			tr = obs.NewTracer().AttachSpan(solveSp)
			ctx = obs.WithTracer(ctx, tr)
		}
		logger.Info("solve start", slog.String("algorithm", name), slog.Int("links", ls.Len()))
		solveStart := time.Now()
		s, err := fadingrls.SolveContext(ctx, name, pr)
		solveSp.End()
		if err != nil {
			return err
		}
		logger.Info("solve done", slog.String("algorithm", name),
			slog.Int("scheduled", s.Len()), obs.DurationSeconds("duration", time.Since(solveStart)))
		viol := fadingrls.Verify(pr, s)
		fmt.Fprintf(out, "%-16s links=%-4d throughput=%-8.4g feasible=%-5v expected-failures/slot=%.4g\n",
			name, s.Len(), s.Throughput(pr), len(viol) == 0, fadingrls.ExpectedFailures(pr, s))
		for k, v := range viol {
			if k == 5 {
				fmt.Fprintf(out, "%-16s   … %d more violations\n", "", len(viol)-k)
				break
			}
			fmt.Fprintf(out, "%-16s   violation: %v\n", "", v)
		}
		if *trace {
			printTrace(out, tr.Stats())
		}
		if *slots > 0 {
			mcSp := obs.SpanFrom(runCtx).Child("mc_simulate")
			if mcSp.Enabled() {
				mcSp.SetStr("algorithm", name)
				mcSp.SetInt("slots", int64(*slots))
			}
			res, err := fadingrls.Simulate(pr, s, fadingrls.SimConfig{Slots: *slots, Seed: *seed})
			mcSp.End()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-16s   simulated %d slots: failures/slot = %v (rate %.4g)\n",
				"", *slots, res.Failures.String(), res.FailureRate())
		}
	}
	if spanTrace != nil {
		if err := writeTraceFile(spanTrace, *traceOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote span trace to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
	}
	return nil
}

// writeTraceFile finishes the run trace and exports it as Chrome
// trace_event JSON.
func writeTraceFile(t *obs.Trace, path string) error {
	t.Finish(0)
	snap := t.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteTraceEvent(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	return f.Close()
}

// printTrace renders one solve's phase timings and counters under the
// result line, phases in execution order, counters alphabetically.
func printTrace(out io.Writer, st *fadingrls.SolveStats) {
	if st == nil {
		return
	}
	for _, ph := range st.Phases {
		fmt.Fprintf(out, "%-16s   phase %-12s %.6fs\n", "", ph.Name, ph.Seconds)
	}
	keys := make([]string, 0, len(st.Counters))
	for k := range st.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(out, "%-16s   counter %-18s %d\n", "", k, st.Counters[k])
	}
}
