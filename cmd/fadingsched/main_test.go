package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, out.String())
	}
	return out.String()
}

func TestDefaultRun(t *testing.T) {
	out := runCLI(t, "-n", "60", "-seed", "3")
	for _, tok := range []string{"instance: 60 links", "ldp", "rle", "feasible=true"} {
		if !strings.Contains(out, tok) {
			t.Errorf("output missing %q:\n%s", tok, out)
		}
	}
}

func TestAllAlgorithms(t *testing.T) {
	out := runCLI(t, "-n", "40", "-algo", "all", "-slots", "20")
	for _, tok := range []string{"approxdiversity", "approxlogn", "dls", "dlsproto", "greedy", "simulated 20 slots"} {
		if !strings.Contains(out, tok) {
			t.Errorf("output missing %q", tok)
		}
	}
	if !strings.Contains(out, "exact") || !strings.Contains(out, "skipped") {
		t.Error("exact not skipped at N=40")
	}
}

func TestExactRunsOnSmallInstance(t *testing.T) {
	out := runCLI(t, "-n", "10", "-algo", "exact")
	if !strings.Contains(out, "exact") || strings.Contains(out, "skipped") {
		t.Errorf("exact should run at N=10:\n%s", out)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inst.json")
	out := runCLI(t, "-n", "25", "-seed", "5", "-save", path)
	if !strings.Contains(out, "saved 25 links") {
		t.Fatalf("save output: %s", out)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	out = runCLI(t, "-load", path, "-algo", "rle")
	if !strings.Contains(out, "instance: 25 links") {
		t.Errorf("load output: %s", out)
	}
}

func TestCustomModelFlags(t *testing.T) {
	out := runCLI(t, "-n", "30", "-alpha", "4", "-eps", "0.05", "-gamma", "2")
	if !strings.Contains(out, "alpha=4 gamma_th=2 eps=0.05") {
		t.Errorf("model line wrong:\n%s", out)
	}
}

func TestTraceFlagPrintsPhasesAndCounters(t *testing.T) {
	out := runCLI(t, "-n", "30", "-seed", "5", "-algo", "rle", "-trace")
	for _, tok := range []string{"phase sort", "phase eliminate", "counter links", "counter picks", "counter scheduled"} {
		if !strings.Contains(out, tok) {
			t.Errorf("-trace output missing %q:\n%s", tok, out)
		}
	}
}

func TestVerboseFlagLogsSolves(t *testing.T) {
	out := runCLI(t, "-n", "30", "-seed", "5", "-algo", "ldp", "-v")
	for _, tok := range []string{"solve start", "solve done", "algorithm=ldp", "duration="} {
		if !strings.Contains(out, tok) {
			t.Errorf("-v output missing %q:\n%s", tok, out)
		}
	}
}

func TestViolationsReportedForBaseline(t *testing.T) {
	out := runCLI(t, "-n", "300", "-algo", "approxdiversity")
	if !strings.Contains(out, "feasible=false") || !strings.Contains(out, "violation:") {
		t.Errorf("baseline violations not reported:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-algo", "bogus", "-n", "5"}, &out); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-load", "/nonexistent/file.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-n", "0"}, &out); err == nil {
		t.Error("zero links accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
