package fadingrls

import "repro/internal/experiment"

// Experiment harness re-exports: everything needed to regenerate the
// paper's figures programmatically. See cmd/experiments for the CLI.
type (
	// ExperimentSpec declares one figure/table sweep.
	ExperimentSpec = experiment.Spec
	// ExperimentOptions trade cost against precision.
	ExperimentOptions = experiment.Options
	// ResultTable is a rendered experiment result.
	ResultTable = experiment.Table
	// Thm31Row is one line of the Theorem 3.1 validation table.
	Thm31Row = experiment.Thm31Row
)

// Experiments returns every runnable experiment spec keyed by ID
// (fig5a, fig5b, fig6a, fig6b, ablations — see DESIGN.md §5).
func Experiments() map[string]ExperimentSpec { return experiment.Specs() }

// RunExperiment executes a spec into a table.
func RunExperiment(spec ExperimentSpec, opts ExperimentOptions) (*ResultTable, error) {
	return experiment.Run(spec, opts)
}

// RunRatioTable measures empirical approximation ratios against the
// exact optimum on small instances (Table A).
func RunRatioTable(opts ExperimentOptions) (*ResultTable, error) {
	return experiment.RatioTable(opts)
}

// RunThm31Table validates the Theorem 3.1 closed form against
// Monte-Carlo simulation (Table B).
func RunThm31Table(seed uint64, trials int) []Thm31Row {
	return experiment.Thm31Table(seed, trials)
}

// RunMultislotTable measures slots-to-drain for the complete-scheduling
// extension (Table E).
func RunMultislotTable(opts ExperimentOptions) (*ResultTable, error) {
	return experiment.MultislotTable(opts)
}

// RunTrafficTable measures queued-traffic goodput vs offered load
// (Table F).
func RunTrafficTable(opts ExperimentOptions) (*ResultTable, error) {
	return experiment.TrafficTable(opts)
}

// RunStalenessTable measures schedule decay under random-waypoint
// mobility (Table G).
func RunStalenessTable(opts ExperimentOptions) (*ResultTable, error) {
	return experiment.StalenessTable(opts)
}

// RunStabilityTable sweeps backlog drift versus offered load for each
// traffic-engine policy (Table I: the stability region).
func RunStabilityTable(opts ExperimentOptions) (*ResultTable, error) {
	return experiment.StabilityTable(opts)
}

// RunDiversityTable probes the O(g(L)) sensitivity with log-uniform
// link lengths over a growing octave span (Table H).
func RunDiversityTable(opts ExperimentOptions) (*ResultTable, error) {
	return experiment.DiversityTable(opts)
}
