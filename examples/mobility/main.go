// Mobility: why the paper cares about fading in the first place — node
// movement. Links roam under a random-waypoint model; a schedule
// computed once decays as the interference geometry churns, and the
// example measures how the rescheduling cadence trades control
// overhead against reliability.
package main

import (
	"fmt"
	"log"

	fadingrls "repro"
)

func main() {
	const (
		n       = 200
		horizon = 500 // slots simulated
		seed    = 41
	)
	ls, err := fadingrls.Generate(fadingrls.PaperConfig(n), seed, 0)
	if err != nil {
		log.Fatal(err)
	}
	params := fadingrls.DefaultParams()

	fmt.Println("mobility: 200 links, random waypoint at 1-10 units/slot, 500-slot horizon")
	fmt.Printf("%-22s %16s %22s\n", "rescheduling cadence", "reschedules", "mean E[failures]/slot")
	for _, every := range []int{1, 10, 50, 250, horizon + 1} {
		tr, err := fadingrls.NewMobilityTrace(ls, fadingrls.MobilityConfig{
			Region: 500, SpeedMin: 1, SpeedMax: 10, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		var (
			current     fadingrls.Schedule
			reschedules int
			totalEF     float64
		)
		for slot := 0; slot < horizon; slot++ {
			snap, err := tr.Snapshot()
			if err != nil {
				log.Fatal(err)
			}
			pr, err := fadingrls.NewProblem(snap, params)
			if err != nil {
				log.Fatal(err)
			}
			if slot%every == 0 {
				current = fadingrls.RLE{}.Schedule(pr)
				reschedules++
			}
			totalEF += fadingrls.ExpectedFailures(pr, current)
			tr.Advance(1)
		}
		label := fmt.Sprintf("every %d slots", every)
		if every > horizon {
			label = "never (schedule once)"
		}
		fmt.Printf("%-22s %16d %22.4f\n", label, reschedules, totalEF/horizon)
	}
	fmt.Println("\nreading: with per-slot rescheduling the fading budget holds continuously")
	fmt.Println("(≈0.005 expected failures, the ε-regime); holding one schedule for the")
	fmt.Println("whole horizon loses the guarantee entirely as nodes drift apart.")
}
