// Quickstart: build a small network, schedule it with the paper's two
// algorithms, verify feasibility, and inspect per-link success
// probabilities — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	fadingrls "repro"
)

func main() {
	// A 150-link deployment with the paper's parameters: senders
	// uniform in a 500×500 region, receivers 5–20 units away.
	ls, err := fadingrls.Generate(fadingrls.PaperConfig(150), 7, 0)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d links, length diversity g(L) = %d\n\n", ls.Len(), ls.Diversity())

	for _, algo := range []fadingrls.Algorithm{fadingrls.LDP{}, fadingrls.RLE{}} {
		s := algo.Schedule(pr)
		fmt.Printf("%s\n", s)
		fmt.Printf("  throughput: %.0f   feasible: %v\n",
			s.Throughput(pr), fadingrls.Feasible(pr, s))

		// Every scheduled link is guaranteed ≥ 1−ε success probability.
		worst := 1.0
		for _, p := range fadingrls.SuccessProbabilities(pr, s) {
			if p < worst {
				worst = p
			}
		}
		fmt.Printf("  worst per-link success probability: %.5f (1−ε = %.5f)\n\n",
			worst, 1-pr.Params.Eps)
	}

	// Custom instances work too: two links, one far away.
	custom, err := fadingrls.NewLinkSet([]fadingrls.Link{
		{Sender: fadingrls.Point{X: 0, Y: 0}, Receiver: fadingrls.Point{X: 10, Y: 0}, Rate: 1},
		{Sender: fadingrls.Point{X: 400, Y: 400}, Receiver: fadingrls.Point{X: 408, Y: 400}, Rate: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	pr2, err := fadingrls.NewProblem(custom, fadingrls.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	s := fadingrls.Exact{}.Schedule(pr2)
	fmt.Printf("custom 2-link instance, exact optimum: %s (throughput %.0f)\n",
		s, s.Throughput(pr2))
}
