// Ratediverse: heterogeneous data rates — the general Fading-R-LS
// objective where throughput is a weighted sum, not a link count. LDP
// is the paper's algorithm for this case (RLE's guarantee only covers
// uniform rates); the example compares it against the banded-class
// variant of [14], the rate-greedy heuristic, and (on a subsample) the
// exact optimum.
package main

import (
	"fmt"
	"log"

	fadingrls "repro"
)

func main() {
	const seed = 99
	cfg := fadingrls.PaperConfig(250)
	cfg.RateMax = 10 // rates uniform in [1, 10]
	ls, err := fadingrls.Generate(cfg, seed, 0)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weighted instance: %d links, rates in [1,10], g(L)=%d\n\n", ls.Len(), ls.Diversity())

	fmt.Printf("%-14s %8s %14s %12s\n", "algorithm", "links", "throughput", "feasible")
	for _, a := range []fadingrls.Algorithm{
		fadingrls.LDP{},
		fadingrls.LDP{Banded: true},
		fadingrls.Greedy{},
		fadingrls.RLE{}, // still feasible, just not guarantee-covered
	} {
		s := a.Schedule(pr)
		fmt.Printf("%-14s %8d %14.1f %12v\n",
			a.Name(), s.Len(), s.Throughput(pr), fadingrls.Feasible(pr, s))
	}

	// On a small weighted sub-instance the exact optimum is tractable:
	// how much do the heuristics leave on the table?
	smallCfg := fadingrls.PaperConfig(14)
	smallCfg.Region = 150
	smallCfg.RateMax = 10
	small, err := fadingrls.Generate(smallCfg, seed, 1)
	if err != nil {
		log.Fatal(err)
	}
	prS, err := fadingrls.NewProblem(small, fadingrls.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	opt := fadingrls.Exact{}.Schedule(prS).Throughput(prS)
	fmt.Printf("\n14-link dense sub-instance, exact optimum = %.1f\n", opt)
	for _, a := range []fadingrls.Algorithm{fadingrls.LDP{}, fadingrls.Greedy{}} {
		v := a.Schedule(prS).Throughput(prS)
		fmt.Printf("  %-10s %.1f  (OPT/alg = %.2f, proven LDP bound 16·g = %.0f)\n",
			a.Name(), v, opt/v, 16*float64(small.Diversity()))
	}
}
