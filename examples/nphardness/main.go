// Nphardness: Theorem 3.2 executed. Builds a knapsack instance,
// embeds it into a Fading-R-LS instance with the paper's reduction
// (Eqs. 23–28), solves both sides exactly, and shows the optima
// coincide — the mechanical witness that maximizing fading-resistant
// throughput is at least as hard as knapsack.
package main

import (
	"fmt"
	"log"

	fadingrls "repro"
)

func main() {
	knap := fadingrls.KnapsackInstance{
		Items: []fadingrls.KnapsackItem{
			{Value: 60, Weight: 10},
			{Value: 100, Weight: 20},
			{Value: 120, Weight: 30},
			{Value: 45, Weight: 15},
			{Value: 30, Weight: 5},
		},
		Capacity: 50,
	}
	knapOpt, chosen, err := fadingrls.SolveKnapsack(knap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knapsack: 5 items, capacity %d → optimum %.0f (items %v)\n\n",
		knap.Capacity, knapOpt, chosen)

	params := fadingrls.DefaultParams()
	red, err := fadingrls.ReduceKnapsack(knap, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reduction (Theorem 3.2):")
	for i := 0; i < red.Links.Len(); i++ {
		l := red.Links.Link(i)
		tag := fmt.Sprintf("item %d", i)
		if i == red.GadgetIndex {
			tag = "gadget"
		}
		fmt.Printf("  %-7s sender (%8.3f, %8.3f)  rate %6.3g  length %.4g\n",
			tag, l.Sender.X, l.Sender.Y, l.Rate, red.Links.Length(i))
	}

	pr, err := fadingrls.NewProblem(red.Links, params)
	if err != nil {
		log.Fatal(err)
	}
	s := fadingrls.Exact{}.Schedule(pr)
	schedOpt := s.Throughput(pr)
	want := red.GadgetRate + knapOpt
	fmt.Printf("\nexact scheduling optimum: %.3f\n", schedOpt)
	fmt.Printf("2·Σvalues + knapsack OPT: %.3f\n", want)
	items := red.ItemsFromSchedule(s.Active)
	fmt.Printf("items recovered from the schedule: %v (weight %d ≤ %d)\n",
		items, knap.TotalWeight(items), knap.Capacity)
	if diff := schedOpt - want; diff > 1e-6 || diff < -1e-6 {
		log.Fatalf("optima disagree by %g — reduction broken", diff)
	}
	fmt.Println("\nthe optima agree: any solver for Fading-R-LS solves knapsack,")
	fmt.Println("so Fading-R-LS is NP-hard (Theorem 3.2, verified mechanically).")
}
