// Validate: a mechanical check of the paper's analysis on live
// simulation — Theorem 3.1's closed-form success probability against
// Monte-Carlo Rayleigh draws, plus a rendered histogram of the realized
// SINR distribution for one receiver.
package main

import (
	"fmt"
	"log"
	"math"

	fadingrls "repro"
)

func main() {
	// Table B: closed form vs empirical across α and interferer counts.
	fmt.Println("Theorem 3.1 validation (100k Rayleigh draws per row)")
	fmt.Printf("%-8s %-13s %-13s %-13s %-8s\n", "alpha", "interferers", "closed-form", "empirical", "sigmas")
	for _, r := range fadingrls.RunThm31Table(123, 100_000) {
		fmt.Printf("%-8.3g %-13d %-13.6f %-13.6f %-8.2f\n",
			r.Alpha, r.Interferers, r.ClosedForm, r.Empirical, r.Deviations())
	}

	// SINR histogram for a receiver under a real schedule: build a
	// dense instance, let ApproxDiversity overpack it, and look at the
	// most-interfered link's realized SINR across slots.
	ls, err := fadingrls.Generate(fadingrls.PaperConfig(200), 5, 0)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	s := fadingrls.ApproxDiversity{}.Schedule(pr)
	res, err := fadingrls.Simulate(pr, s, fadingrls.SimConfig{Slots: 3000, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	worst, worstFails := 0, int64(-1)
	for k, c := range res.PerLinkFailures {
		if c > worstFails {
			worst, worstFails = k, c
		}
	}
	probs := fadingrls.SuccessProbabilities(pr, s)
	fmt.Printf("\nmost-interfered scheduled link: index %d\n", s.Active[worst])
	fmt.Printf("  analytic success probability: %.4f\n", probs[worst])
	fmt.Printf("  empirical over 3000 slots:    %.4f\n", 1-float64(worstFails)/3000)
	if math.Abs(probs[worst]-(1-float64(worstFails)/3000)) > 0.05 {
		log.Fatal("closed form and simulation disagree — model bug")
	}
	fmt.Println("\nclosed form and simulation agree: the Corollary 3.1 budget test is")
	fmt.Println("an exact proxy for per-link outage probability under Rayleigh fading.")
}
