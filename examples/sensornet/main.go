// Sensornet: the paper's motivating uniform-rate workload — sensors
// periodically reporting to nearby aggregation nodes — scheduled by a
// fading-aware algorithm (RLE) and by the two deterministic-SINR
// baselines, then exposed to an actual Rayleigh channel.
//
// The output is the paper's Fig. 5 story on one concrete deployment:
// the baselines activate more links but a measurable fraction of their
// transmissions fail every slot, while RLE's failures stay below ε.
package main

import (
	"fmt"
	"log"

	fadingrls "repro"
)

func main() {
	const (
		sensors = 400
		seed    = 2017
		slots   = 500
	)
	// Clustered deployment: sensors bunch around 6 hot spots, the
	// regime where accumulated interference punishes non-fading models
	// hardest.
	cfg := fadingrls.PaperConfig(sensors)
	cfg.Clusters, cfg.ClusterSpread = 6, 25
	ls, err := fadingrls.Generate(cfg, seed, 0)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor network: %d uniform-rate links in 6 clusters\n", ls.Len())
	fmt.Printf("channel: Rayleigh fading, alpha=%g, decoding threshold %g, target error %g\n\n",
		pr.Params.Alpha, pr.Params.GammaTh, pr.Params.Eps)

	algos := []fadingrls.Algorithm{
		fadingrls.RLE{},
		fadingrls.DLS{Seed: seed},
		fadingrls.ApproxLogN{},
		fadingrls.ApproxDiversity{},
	}
	fmt.Printf("%-18s %8s %10s %14s %16s\n",
		"algorithm", "links", "feasible", "fails/slot", "failure rate")
	for _, a := range algos {
		s := a.Schedule(pr)
		res, err := fadingrls.Simulate(pr, s, fadingrls.SimConfig{Slots: slots, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %8d %10v %14.3f %15.2f%%\n",
			a.Name(), s.Len(), fadingrls.Feasible(pr, s),
			res.Failures.Mean(), 100*res.FailureRate())
	}

	fmt.Println("\nreading: the deterministic baselines pack more concurrent sensors,")
	fmt.Println("but under fading a slice of their reports is lost every slot; the")
	fmt.Println("fading-aware schedules deliver ≈100% of what they promise.")
}
