// Trafficsim: the system-level consequence of fading-resistant
// scheduling. Packets arrive at every link's sender; each slot the
// traffic engine selects a queue-aware transmission set through one
// long-lived Prepared solve handle; each transmission rides a live
// Rayleigh channel and failed packets are retransmitted.
//
// The run compares end-to-end goodput, loss rate, delay, and backlog
// drift across the engine's queue policies, then prints a complete
// multi-slot plan (the paper's stated future work: drain every link
// in the minimum number of slots).
package main

import (
	"context"
	"fmt"
	"log"

	fadingrls "repro"
)

func main() {
	const seed = 31
	ls, err := fadingrls.Generate(fadingrls.PaperConfig(120), seed, 0)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	prep := fadingrls.NewPrepared(pr)

	fmt.Println("traffic: 120 links, Bernoulli(0.08) arrivals, 400 slots, Rayleigh channel")
	fmt.Printf("%-18s %10s %10s %10s %12s %10s %12s %8s\n",
		"policy", "delivered", "backlog", "loss rate", "mean delay", "p95 delay", "goodput/slot", "drift")
	for _, pol := range []fadingrls.TrafficPolicy{"backlog", "maxqueue", "maxweight"} {
		eng, err := fadingrls.NewTrafficEngine(prep, fadingrls.TrafficConfig{
			Slots:    400,
			Arrivals: fadingrls.BernoulliArrivals{P: 0.08},
			Policy:   pol,
			Seed:     seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := eng.Run(context.Background())
		p95 := 0.0
		if len(res.DelaySamples) > 0 {
			p95 = fadingrls.Quantile(res.DelaySamples, 0.95)
		}
		fmt.Printf("%-18s %10d %10d %9.2f%% %12.1f %10.1f %12.2f %8.3f\n",
			res.Policy, res.Delivered, res.Backlog, 100*res.LossRate(),
			res.Delay.Mean(), p95, res.PerSlotDelivered.Mean(), res.Drift)
	}

	// Complete scheduling: how many slots to drain every link once?
	fmt.Println("\ncomplete one-shot drain (paper §VII future work):")
	for _, algo := range []fadingrls.Algorithm{fadingrls.RLE{}, fadingrls.LDP{}, fadingrls.Greedy{}} {
		plan, err := fadingrls.BuildMultiSlotPlan(pr, algo)
		if err != nil {
			log.Fatal(err)
		}
		if err := fadingrls.ValidateMultiSlotPlan(pr, plan); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s drains %d links in %d slots (%.1f links/slot)\n",
			algo.Name(), plan.TotalScheduled(), plan.NumSlots(),
			float64(plan.TotalScheduled())/float64(plan.NumSlots()))
	}
}
