// Convergecast: periodic data aggregation from sensors to a sink — the
// workload the paper cites to motivate uniform-rate scheduling. Builds
// a geometric aggregation tree over 150 sensors, then schedules the
// complete aggregation under the Rayleigh model with different slot
// packers, reporting aggregation latency (the metric of the
// aggregation-scheduling literature the paper discusses).
package main

import (
	"fmt"
	"log"

	fadingrls "repro"
)

func main() {
	// 150 sensors uniform in 600×600 with the sink at the center.
	const n = 150
	cfg := fadingrls.PaperConfig(n)
	cfg.Region = 600
	deployment, err := fadingrls.Generate(cfg, 77, 0)
	if err != nil {
		log.Fatal(err)
	}
	nodes := deployment.Senders() // reuse the generator's sender layout
	sink := fadingrls.Point{X: 300, Y: 300}

	tree, err := fadingrls.BuildAggregationTree(nodes, sink)
	if err != nil {
		log.Fatal(err)
	}
	_, height := tree.Depth()
	fmt.Printf("aggregation tree: %d sensors, height %d, longest hop %.1f\n\n",
		n, height, tree.MaxEdgeLength())

	params := fadingrls.DefaultParams()
	fmt.Printf("%-10s %12s %18s\n", "packer", "latency", "vs height LB")
	for _, algo := range []fadingrls.Algorithm{
		fadingrls.Greedy{},
		fadingrls.RLE{},
		fadingrls.LDP{},
	} {
		cs, err := fadingrls.Convergecast(tree, params, algo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12d %17.1fx\n", algo.Name(), cs.Latency,
			float64(cs.Latency)/float64(height))
	}
	fmt.Println("\nevery slot of every schedule satisfies the Corollary 3.1 budget, so")
	fmt.Println("each hop succeeds with probability ≥ 1−ε even under Rayleigh fading;")
	fmt.Println("the sequential lower bound is the tree height (the critical path).")
}
