package fadingrls

// Re-exports for the repository's extensions beyond the paper:
// complete (multi-slot) scheduling — the paper's stated future work —
// the traffic/queueing simulator, and the schedule repair operator.

import (
	"context"

	"repro/internal/aggregation"
	"repro/internal/dlsproto"
	"repro/internal/mobility"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/traffic"
)

type (
	// MultiSlotPlan is a complete schedule covering every schedulable
	// link across consecutive slots.
	MultiSlotPlan = traffic.Plan
	// TrafficConfig drives the multi-slot traffic engine (horizon,
	// arrival process, queue policy, diagnostics).
	TrafficConfig = traffic.Config
	// TrafficResult summarizes a traffic simulation (goodput, delay
	// quantiles, losses, backlog, drift).
	TrafficResult = traffic.Result
	// TrafficEngine is the slot-by-slot simulation engine layered on a
	// Prepared solve handle.
	TrafficEngine = traffic.Engine
	// TrafficPolicy selects the per-slot scheduling rule (backlog,
	// maxqueue, maxweight).
	TrafficPolicy = traffic.Policy

	// BernoulliArrivals delivers ≤1 packet per link per slot with
	// probability P.
	BernoulliArrivals = traffic.Bernoulli
	// PoissonArrivals delivers Poisson batches with mean Lambda per
	// link per slot.
	PoissonArrivals = traffic.Poisson
	// TraceArrivals replays recorded per-slot arrival counts.
	TraceArrivals = traffic.Trace
)

// BuildMultiSlotPlan schedules ALL links in consecutive slots by
// repeatedly applying the one-slot algorithm to the residual links
// (§VII future work; see internal/traffic for the guarantee
// discussion).
func BuildMultiSlotPlan(pr *Problem, algo Algorithm) (MultiSlotPlan, error) {
	return traffic.BuildPlan(pr, algo)
}

// ValidateMultiSlotPlan independently re-checks a plan: every slot
// feasible, every schedulable link covered exactly once.
func ValidateMultiSlotPlan(pr *Problem, p MultiSlotPlan) error {
	return p.Validate(pr)
}

// NewTrafficEngine builds a traffic engine over an existing Prepared
// handle, reusing its interference field and scratch pool across the
// whole run.
func NewTrafficEngine(pp *Prepared, cfg TrafficConfig) (*TrafficEngine, error) {
	return traffic.New(pp, cfg)
}

// RunTraffic simulates queued packet traffic over the instance with a
// policy-selected per-slot solve and live Rayleigh fading. It builds a
// one-off Prepared handle; callers running many configurations on the
// same instance should build one with NewPrepared and use
// NewTrafficEngine.
func RunTraffic(pr *Problem, cfg TrafficConfig) (TrafficResult, error) {
	eng, err := traffic.New(sched.NewPrepared(pr), cfg)
	if err != nil {
		return TrafficResult{}, err
	}
	return eng.Run(context.Background()), nil
}

// Quantile returns the q-quantile of a sample (type-7 interpolation);
// the companion to TrafficResult.DelaySamples for latency percentiles.
func Quantile(xs []float64, q float64) float64 {
	return stats.Quantile(xs, q)
}

type (
	// MobilityConfig parameterizes the random-waypoint model.
	MobilityConfig = mobility.Config
	// MobilityTrace is an evolving mobile deployment; Advance moves
	// time, Snapshot materializes the current instant as a LinkSet.
	MobilityTrace = mobility.Trace
)

// NewMobilityTrace starts a random-waypoint trace at the instance's
// current positions (links move as rigid sender/receiver pairs).
func NewMobilityTrace(base *LinkSet, cfg MobilityConfig) (*MobilityTrace, error) {
	return mobility.NewTrace(base, cfg)
}

// Repair drops links from an infeasible schedule — largest contributor
// to the worst violation first — until it verifies feasible. Feasible
// schedules pass through unchanged. Use it to run non-fading-aware
// schedules safely under the Rayleigh model.
func Repair(pr *Problem, s Schedule) Schedule {
	return sched.Repair(pr, s)
}

type (
	// DLSProto is the decentralized scheduler implemented as a real
	// message-passing protocol (one goroutine-backed node per link,
	// radio-range-limited broadcasts); the honestly-distributed
	// counterpart of DLS. Registered as "dlsproto".
	DLSProto = dlsproto.Algorithm
	// DLSProtoConfig tunes the protocol (seed, cycles, radio range).
	DLSProtoConfig = dlsproto.Config

	// AggregationTree is a geometric sensor-to-sink routing tree.
	AggregationTree = aggregation.Tree
	// ConvergecastSchedule assigns every tree node a transmission slot
	// respecting aggregation precedence and per-slot fading
	// feasibility.
	ConvergecastSchedule = aggregation.Schedule
)

// BuildAggregationTree connects each node to its nearest neighbor
// strictly closer to the sink (acyclic by construction).
func BuildAggregationTree(nodes []Point, sink Point) (*AggregationTree, error) {
	return aggregation.BuildTree(nodes, sink)
}

// Convergecast schedules a complete data aggregation over the tree:
// every node transmits once, after its children, in slots feasible
// under the Rayleigh model, packed by the given one-slot algorithm.
func Convergecast(t *AggregationTree, params Params, algo Algorithm) (*ConvergecastSchedule, error) {
	return aggregation.Convergecast(t, params, algo)
}
