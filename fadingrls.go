// Package fadingrls is the public API of the Fading-R-LS reproduction:
// link scheduling under the Rayleigh-fading SINR model, after
//
//	C. Qiu and H. Shen, "Fading-Resistant Link Scheduling in Wireless
//	Networks", ICPP 2017.
//
// The package exposes, through thin aliases over the internal
// implementation packages:
//
//   - the instance model (Link, LinkSet, deployment generators);
//   - the Rayleigh and deterministic channel models (Params);
//   - the scheduling problem and all algorithms — the paper's LDP and
//     RLE, the deterministic baselines ApproxLogN and ApproxDiversity,
//     the exact branch-and-bound, the Greedy heuristic, and the
//     decentralized DLS reconstruction;
//   - schedule verification (Corollary 3.1) and the Monte-Carlo channel
//     simulator behind the paper's failed-transmission measurements;
//   - the experiment harness regenerating every figure of §V.
//
// Quick start:
//
//	ls, _ := fadingrls.Generate(fadingrls.PaperConfig(300), 42, 0)
//	pr, _ := fadingrls.NewProblem(ls, fadingrls.DefaultParams())
//	s := fadingrls.RLE{}.Schedule(pr)
//	fmt.Println(s.Throughput(pr), fadingrls.Feasible(pr, s))
package fadingrls

import (
	"context"
	"fmt"
	"io"

	"repro/internal/geom"
	"repro/internal/mc"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/sched"
)

// Geometry and instance model.
type (
	// Point is a location in the plane.
	Point = geom.Point
	// Link is one sender→receiver transmission request.
	Link = network.Link
	// LinkSet is an immutable Fading-R-LS instance.
	LinkSet = network.LinkSet
	// GenConfig configures the random deployment generators.
	GenConfig = network.GenConfig
	// LengthClass is one LDP link class (Eq. 36).
	LengthClass = network.LengthClass
)

// Channel model.
type (
	// Params bundles the physical-layer constants (α, γ_th, ε, P, N0).
	Params = radio.Params
)

// Scheduling.
type (
	// Problem is an instance plus channel parameters with cached
	// interference factors.
	Problem = sched.Problem
	// Schedule is an activation set for one time slot.
	Schedule = sched.Schedule
	// Algorithm is any Fading-R-LS scheduler.
	Algorithm = sched.Algorithm
	// ContextAlgorithm is an Algorithm whose solve honors context
	// cancellation (Exact, DLS) — what schedd aborts on deadline.
	ContextAlgorithm = sched.ContextAlgorithm
	// Violation reports one receiver over its feasibility budget.
	Violation = sched.Violation

	// LDP is the paper's O(g(L)) link-diversity-partition algorithm.
	LDP = sched.LDP
	// RLE is the paper's constant-factor recursive-link-elimination
	// algorithm for uniform rates.
	RLE = sched.RLE
	// ApproxLogN is the deterministic-SINR baseline of [14].
	ApproxLogN = sched.ApproxLogN
	// ApproxDiversity is the deterministic-SINR baseline of [15].
	ApproxDiversity = sched.ApproxDiversity
	// Greedy is the rate-greedy insertion heuristic.
	Greedy = sched.Greedy
	// Sharded is the tile-parallel greedy: receivers are partitioned
	// onto a spatial grid, tiles solve concurrently under a reserved
	// cross-tile interference budget, and a full-budget merge pass
	// repairs the boundaries. Shards=1 is bit-identical to Greedy.
	Sharded = sched.Sharded
	// Shardable marks algorithms whose tile count callers can pin.
	Shardable = sched.Shardable
	// Exact is the parallel branch-and-bound optimum solver.
	Exact = sched.Exact
	// DLS is the decentralized scheduler reconstruction.
	DLS = sched.DLS
	// ILP is the big-M matrix form of the problem (Eqs. 20–22).
	ILP = sched.ILP

	// InterferenceField is the pluggable interference backend every
	// scheduler and the verifier read through.
	InterferenceField = sched.InterferenceField
	// ProblemOption selects a NewProblem interference backend.
	ProblemOption = sched.Option
	// SparseOptions configures the sparse (truncated) backend.
	SparseOptions = sched.SparseOptions
	// DenseField is the exact n×n matrix backend.
	DenseField = sched.DenseField
	// SparseField is the grid-indexed near-field backend with a
	// conservative far-field tail bound.
	SparseField = sched.SparseField
	// Accum is the incremental per-receiver feasibility accumulator.
	Accum = sched.Accum

	// Prepared is a reusable solve handle: it owns a built interference
	// field plus pooled per-solve scratch, so repeated solves on one
	// instance — across goroutines, algorithms, and ε-variants via
	// Derive — allocate nothing in steady state.
	Prepared = sched.Prepared
)

// Simulation.
type (
	// SimConfig configures the Monte-Carlo channel simulator.
	SimConfig = mc.Config
	// SimResult is a simulation summary (failed transmissions).
	SimResult = mc.Result
	// AdaptiveSimConfig configures precision-targeted simulation.
	AdaptiveSimConfig = mc.AdaptiveConfig
)

// Observability.
type (
	// Tracer collects one solve's phase timings and algorithm counters;
	// install with WithTracer and hand the context to SolveContext. A
	// nil *Tracer is the disabled state — every method no-ops.
	Tracer = obs.Tracer
	// SolveStats is a Tracer snapshot: phases in execution order plus
	// counters (see obs.Key* for the vocabulary).
	SolveStats = obs.SolveStats
	// PhaseStat is one solver phase's accumulated wall time.
	PhaseStat = obs.PhaseStat
)

// NewTracer returns an enabled solve tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// WithTracer returns a context carrying tr; SolveContext routes it into
// the algorithm.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return obs.WithTracer(ctx, tr)
}

// DefaultParams returns the paper's evaluation parameters
// (α = 3, γ_th = 1, ε = 0.01, P = 1, zero noise).
func DefaultParams() Params { return radio.DefaultParams() }

// PaperConfig returns the paper's deployment configuration for n links
// (500×500 region, link lengths uniform in [5,20], unit rates).
func PaperConfig(n int) GenConfig { return network.PaperConfig(n) }

// Generate draws a random deployment; (cfg, seed, index) fully
// determine the instance.
func Generate(cfg GenConfig, seed, index uint64) (*LinkSet, error) {
	return network.Generate(cfg, seed, index)
}

// GenerateGrid builds the deterministic k×k lattice workload.
func GenerateGrid(k int, spacing, linkLen, rate float64) (*LinkSet, error) {
	return network.GenerateGrid(k, spacing, linkLen, rate)
}

// NewLinkSet validates and indexes an explicit link list.
func NewLinkSet(links []Link) (*LinkSet, error) { return network.NewLinkSet(links) }

// ReadLinkSet parses an instance previously written with
// LinkSet.Write, revalidating every link.
func ReadLinkSet(r io.Reader) (*LinkSet, error) { return network.Read(r) }

// NewProblem validates parameters and constructs the interference
// field. With no options it builds the exact dense factor matrix (in
// parallel); pass WithSparseField to scale to instances where the n²
// matrix no longer fits, trading a bounded, conservative-only
// truncation error.
func NewProblem(ls *LinkSet, p Params, opts ...ProblemOption) (*Problem, error) {
	return sched.NewProblem(ls, p, opts...)
}

// NewProblemContext is NewProblem under a context: when ctx carries a
// trace span (obs.ContextWithSpan) the O(n²) field construction is
// recorded as nested spans — the backend's fill/build phases included —
// in that request's trace.
func NewProblemContext(ctx context.Context, ls *LinkSet, p Params, opts ...ProblemOption) (*Problem, error) {
	return sched.NewProblemContext(ctx, ls, p, opts...)
}

// Prepare builds the problem and wraps it in a Prepared handle — the
// entry point for callers that will solve the same instance more than
// once (servers, sweeps, mobility re-planning).
func Prepare(ls *LinkSet, p Params, opts ...ProblemOption) (*Prepared, error) {
	return sched.Prepare(ls, p, opts...)
}

// PrepareContext is Prepare under a context (see NewProblemContext).
func PrepareContext(ctx context.Context, ls *LinkSet, p Params, opts ...ProblemOption) (*Prepared, error) {
	return sched.PrepareContext(ctx, ls, p, opts...)
}

// NewPrepared wraps an existing problem in a Prepared handle.
func NewPrepared(pr *Problem) *Prepared { return sched.NewPrepared(pr) }

// WithDenseField selects the exact dense matrix backend (the default).
func WithDenseField() ProblemOption { return sched.WithDenseField() }

// WithSparseField selects the truncated near-field backend: only
// factors above the cutoff are stored; the far field is charged a
// provable per-unit-power tail bound, so feasibility answers are
// conservative-only (never optimistic).
func WithSparseField(o SparseOptions) ProblemOption { return sched.WithSparseField(o) }

// FieldOption resolves a backend by name ("dense" or "sparse"), the
// form CLI flags arrive in; cutoff applies to sparse only (0 =
// default).
func FieldOption(name string, cutoff float64) (ProblemOption, error) {
	return sched.FieldOption(name, cutoff)
}

// NewAccum returns an incremental feasibility accumulator over the
// problem's interference field, preloaded with each receiver's noise
// term: AddLink/RemoveLink maintain every receiver's conservative
// load, Headroom(j) is the remaining γ_ε budget.
func NewAccum(pr *Problem) *Accum { return sched.NewAccum(pr) }

// Verify independently re-checks a schedule against Corollary 3.1,
// returning all violated receivers (empty ⇒ feasible).
func Verify(pr *Problem, s Schedule) []Violation { return sched.Verify(pr, s) }

// Feasible reports whether the schedule passes Verify.
func Feasible(pr *Problem, s Schedule) bool { return sched.Feasible(pr, s) }

// SuccessProbabilities returns each scheduled link's Theorem 3.1
// success probability, indexed like s.Active.
func SuccessProbabilities(pr *Problem, s Schedule) []float64 {
	return sched.SuccessProbabilities(pr, s)
}

// ExpectedFailures returns the analytic per-slot expectation of failed
// transmissions under the schedule.
func ExpectedFailures(pr *Problem, s Schedule) float64 { return sched.ExpectedFailures(pr, s) }

// Simulate draws Rayleigh realizations of the schedule and counts
// failed transmissions (the paper's Fig. 5 measurement).
func Simulate(pr *Problem, s Schedule, cfg SimConfig) (SimResult, error) {
	return mc.Simulate(pr, s, cfg)
}

// SimulateAdaptive runs Monte-Carlo batches until the failure
// estimate's 95% CI half-width reaches the target (or the slot cap),
// spending effort only where variance demands it.
func SimulateAdaptive(pr *Problem, s Schedule, cfg AdaptiveSimConfig) (SimResult, error) {
	return mc.SimulateAdaptive(pr, s, cfg)
}

// BuildILP extracts the big-M ILP data of a problem.
func BuildILP(pr *Problem) ILP { return sched.BuildILP(pr) }

// Algorithms returns the names of all registered algorithms.
func Algorithms() []string { return sched.Names() }

// Solve runs a registered algorithm by name.
func Solve(name string, pr *Problem) (Schedule, error) {
	a, ok := sched.Lookup(name)
	if !ok {
		return Schedule{}, fmt.Errorf("fadingrls: unknown algorithm %q (have %v)", name, sched.Names())
	}
	return a.Schedule(pr), nil
}

// SolveContext runs a registered algorithm under ctx: context-aware
// solvers (Exact, DLS) abort mid-search on cancellation, others are
// checked at the boundaries. This is the entry point long-running
// services (cmd/schedd) use to honor request deadlines.
func SolveContext(ctx context.Context, name string, pr *Problem) (Schedule, error) {
	return sched.SolveContext(ctx, name, pr)
}
